//! Minimal self-timed micro-benchmark harness (std-only stand-in for
//! criterion, which is not vendored in this workspace).
//!
//! Each measurement runs a closure `iters` times after one warmup call and
//! reports total wall time, per-iteration time, and an optional throughput
//! in elements per second. Output is one aligned line per benchmark so the
//! bench binaries stay grep-friendly in CI logs.

use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Iterations timed (excluding warmup).
    pub iters: u32,
    /// Total wall time across all timed iterations.
    pub total: Duration,
    /// Elements processed per iteration (0 when not meaningful).
    pub elems_per_iter: u64,
}

impl Measurement {
    /// The floor below which a total elapsed time is indistinguishable
    /// from timer resolution: dividing by it produces rates that are
    /// noise, not throughput.
    const RESOLUTION_FLOOR: Duration = Duration::from_micros(1);

    /// Mean wall time of one iteration.
    pub fn per_iter(&self) -> Duration {
        self.total / self.iters.max(1)
    }

    /// `true` when the *total* measured time fell at or below the timer
    /// resolution floor — the run finished too fast for the clock, and
    /// any derived rate would be bogus.
    pub fn under_resolution(&self) -> bool {
        self.total <= Self::RESOLUTION_FLOOR
    }

    /// Throughput in elements per second, when `elems_per_iter` is set
    /// and the measurement resolved. `None` both when no element count
    /// was given and when the elapsed total was at or below timer
    /// resolution ([`Measurement::under_resolution`]) — reporting a
    /// quotient of a sub-resolution denominator would fabricate a rate.
    pub fn elems_per_sec(&self) -> Option<f64> {
        if self.elems_per_iter == 0 || self.under_resolution() {
            return None;
        }
        let secs = self.per_iter().as_secs_f64();
        (secs > 0.0).then(|| self.elems_per_iter as f64 / secs)
    }

    /// Renders the standard one-line report. Sub-resolution runs get a
    /// visible warning instead of a fabricated rate — raise `iters`
    /// until the total comfortably exceeds the timer resolution.
    pub fn report(&self) -> String {
        let per = self.per_iter();
        if self.under_resolution() {
            return format!(
                "{:<40} {:>12.3?}/iter  [warning: total {:?} under timer \
                 resolution; rate not reported — raise iters]",
                self.name, per, self.total
            );
        }
        match self.elems_per_sec() {
            Some(eps) => format!(
                "{:<40} {:>12.3?}/iter  {:>12.0} elems/s",
                self.name, per, eps
            ),
            None => format!("{:<40} {:>12.3?}/iter", self.name, per),
        }
    }
}

/// A started wall-clock timer — the sanctioned way for bench code outside
/// this module to read host time. Simulated results must never depend on
/// the host clock (`nmpic-lint` rule L6), so every wall-clock read is
/// funneled through here, where it is auditable and clearly labeled as a
/// *host-side* measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the watch.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Wall time since [`Stopwatch::start`] in milliseconds, floored at a
    /// small epsilon so downstream rate divisions stay finite.
    pub fn elapsed_ms(&self) -> f64 {
        (self.elapsed().as_secs_f64() * 1e3).max(1e-6)
    }
}

/// A wall-clock [`nmpic_system::Clock`] for service latency accounting:
/// nanoseconds since construction. Library code is forbidden from
/// reading the host clock (`nmpic-lint` rule L6), so `SpmvService`
/// defaults to a deterministic logical clock; benchmarks measuring real
/// tail latency inject this instead via
/// `SpmvService::builder(engine).clock(Arc::new(WallClock::new()))`.
#[derive(Debug, Clone, Copy)]
pub struct WallClock(Instant);

impl WallClock {
    /// A clock whose epoch (reading 0) is now.
    pub fn new() -> Self {
        WallClock(Instant::now())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl nmpic_system::Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // 2^64 ns ≈ 584 years since construction: the cast cannot
        // truncate in practice.
        self.0.elapsed().as_nanos() as u64
    }
}

/// Times `f` for `iters` iterations (after one warmup call) and prints the
/// one-line report. The closure's return value is consumed with
/// [`std::hint::black_box`] so the compiler cannot elide the work.
pub fn bench<T>(
    name: &str,
    iters: u32,
    elems_per_iter: u64,
    mut f: impl FnMut() -> T,
) -> Measurement {
    std::hint::black_box(f()); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let m = Measurement {
        name: name.to_string(),
        iters,
        total: start.elapsed(),
        elems_per_iter,
    };
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations() {
        let mut calls = 0u32;
        let m = bench("test/count", 5, 10, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6, "5 timed + 1 warmup");
        assert_eq!(m.iters, 5);
        // A trivial closure may finish under timer resolution, in which
        // case the rate is (correctly) withheld.
        assert_eq!(m.elems_per_sec().is_some(), !m.under_resolution());
    }

    #[test]
    fn sub_resolution_runs_warn_instead_of_fabricating_a_rate() {
        let m = Measurement {
            name: "g/fast".into(),
            iters: 1000,
            total: Duration::from_nanos(10),
            elems_per_iter: 1_000_000,
        };
        assert!(m.under_resolution());
        assert_eq!(m.elems_per_sec(), None, "no rate from a ~0 denominator");
        let r = m.report();
        assert!(r.contains("under timer resolution"), "{r}");
        assert!(!r.contains("elems/s"), "{r}");
        // A resolved run still reports normally.
        let ok = Measurement {
            name: "g/slow".into(),
            iters: 10,
            total: Duration::from_millis(5),
            elems_per_iter: 100,
        };
        assert!(!ok.under_resolution());
        assert!(ok.elems_per_sec().is_some());
        assert!(ok.report().contains("elems/s"));
    }

    #[test]
    fn stopwatch_advances_and_floors_ms() {
        let w = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(w.elapsed() >= Duration::from_millis(2));
        assert!(w.elapsed_ms() >= 2.0);
        // The epsilon floor keeps rates finite even for ~0 elapsed reads.
        assert!(Stopwatch::start().elapsed_ms() > 0.0);
    }

    #[test]
    fn wall_clock_is_monotone_and_advances() {
        use nmpic_system::Clock;
        let c = WallClock::new();
        let a = c.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_ns();
        assert!(b > a, "the clock must advance across a sleep");
        assert!(b >= 2_000_000, "at least the slept 2 ms in ns");
    }

    #[test]
    fn report_includes_name() {
        let m = Measurement {
            name: "g/x".into(),
            iters: 1,
            total: Duration::from_millis(2),
            elems_per_iter: 0,
        };
        assert!(m.report().contains("g/x"));
        assert!(m.elems_per_sec().is_none());
    }
}
