//! Criterion benches of the cycle-accurate adapter simulation itself:
//! simulated-elements-per-wallclock-second for each variant, plus the
//! coalescer datapath in isolation. These double as performance
//! regression tests for the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmpic_core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic_sparse::{by_name, Sell};

fn stream_variants(c: &mut Criterion) {
    let spec = by_name("HPCG").expect("suite matrix");
    let csr = spec.build_capped(20_000);
    let sell = Sell::from_csr_default(&csr);
    let indices = sell.col_idx().to_vec();
    let opts = StreamOptions::default();

    let mut group = c.benchmark_group("indirect_stream");
    group.throughput(Throughput::Elements(indices.len() as u64));
    group.sample_size(10);
    for cfg in [
        AdapterConfig::mlp_nc(),
        AdapterConfig::mlp(64),
        AdapterConfig::mlp(256),
        AdapterConfig::seq(256),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.variant_name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let r = run_indirect_stream(cfg, &indices, csr.cols(), &opts);
                    assert!(r.verified);
                    r.cycles
                })
            },
        );
    }
    group.finish();
}

fn window_scaling(c: &mut Criterion) {
    let spec = by_name("af_shell10").expect("suite matrix");
    let csr = spec.build_capped(10_000);
    let sell = Sell::from_csr_default(&csr);
    let indices = sell.col_idx().to_vec();
    let opts = StreamOptions::default();

    let mut group = c.benchmark_group("window_scaling");
    group.sample_size(10);
    for w in [8usize, 32, 128, 256] {
        let cfg = AdapterConfig::mlp(w);
        group.bench_with_input(BenchmarkId::from_parameter(w), &cfg, |b, cfg| {
            b.iter(|| run_indirect_stream(cfg, &indices, csr.cols(), &opts).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, stream_variants, window_scaling);
criterion_main!(benches);
