//! Self-timed benches of the cycle-accurate adapter simulation itself:
//! simulated-elements-per-wallclock-second for each variant, plus window
//! scaling. These double as performance regression probes for the
//! simulator (run with `cargo bench -p nmpic-bench`).

use nmpic_bench::timing::bench;
use nmpic_core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic_sparse::{by_name, Sell};

fn main() {
    let opts = StreamOptions::default();

    let spec = by_name("HPCG").expect("suite matrix");
    let csr = spec.build_capped(20_000);
    let sell = Sell::from_csr_default(&csr);
    let indices = sell.col_idx().to_vec();
    for cfg in [
        AdapterConfig::mlp_nc(),
        AdapterConfig::mlp(64),
        AdapterConfig::mlp(256),
        AdapterConfig::seq(256),
    ] {
        let name = format!("indirect_stream/{}", cfg.variant_name());
        bench(&name, 5, indices.len() as u64, || {
            let r = run_indirect_stream(&cfg, &indices, csr.cols(), &opts);
            assert!(r.verified);
            r.cycles
        });
    }

    let spec = by_name("af_shell10").expect("suite matrix");
    let csr = spec.build_capped(10_000);
    let sell = Sell::from_csr_default(&csr);
    let indices = sell.col_idx().to_vec();
    for w in [8usize, 32, 128, 256] {
        let cfg = AdapterConfig::mlp(w);
        let name = format!("window_scaling/{w}");
        bench(&name, 5, indices.len() as u64, || {
            run_indirect_stream(&cfg, &indices, csr.cols(), &opts).cycles
        });
    }
}
