//! Self-timed benches of the data-side substrates: golden SpMV, format
//! conversion, and matrix generation.

use nmpic_bench::timing::bench;
use nmpic_sparse::{by_name, gen, Sell};

fn main() {
    let csr = by_name("pwtk").unwrap().build_capped(200_000);
    let x: Vec<f64> = (0..csr.cols()).map(|i| i as f64 * 0.01).collect();
    bench("golden_spmv/csr", 20, csr.nnz() as u64, || csr.spmv(&x));
    let sell = Sell::from_csr_default(&csr);
    bench("golden_spmv/sell", 20, csr.nnz() as u64, || sell.spmv(&x));

    let csr = by_name("af_shell10").unwrap().build_capped(200_000);
    bench("conversion/csr_to_sell", 10, csr.nnz() as u64, || {
        Sell::from_csr_default(&csr)
    });

    bench("generators/stencil27", 5, 0, || gen::stencil27(24, 24, 24));
    bench("generators/banded_fem", 5, 0, || {
        gen::banded_fem(20_000, 12, 200, 1)
    });
    bench("generators/circuit", 5, 0, || {
        gen::circuit(40_000, 4, 32, 0.1, 16, 1)
    });
}
