//! Criterion benches of the data-side substrates: golden SpMV, format
//! conversion, and matrix generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmpic_sparse::{by_name, gen, Sell};

fn golden_spmv(c: &mut Criterion) {
    let csr = by_name("pwtk").unwrap().build_capped(200_000);
    let x: Vec<f64> = (0..csr.cols()).map(|i| i as f64 * 0.01).collect();
    let mut group = c.benchmark_group("golden_spmv");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("csr", |b| b.iter(|| csr.spmv(&x)));
    let sell = Sell::from_csr_default(&csr);
    group.bench_function("sell", |b| b.iter(|| sell.spmv(&x)));
    group.finish();
}

fn conversion(c: &mut Criterion) {
    let csr = by_name("af_shell10").unwrap().build_capped(200_000);
    c.bench_function("csr_to_sell", |b| b.iter(|| Sell::from_csr_default(&csr)));
}

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    for (name, f) in [
        ("stencil27", Box::new(|| gen::stencil27(24, 24, 24)) as Box<dyn Fn() -> _>),
        ("banded_fem", Box::new(|| gen::banded_fem(20_000, 12, 200, 1))),
        ("circuit", Box::new(|| gen::circuit(40_000, 4, 32, 0.1, 16, 1))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &f, |b, f| b.iter(f));
    }
    group.finish();
}

criterion_group!(benches, golden_spmv, conversion, generation);
criterion_main!(benches);
