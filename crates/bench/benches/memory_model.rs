//! Self-timed benches of the HBM2 channel model: streaming vs random
//! access patterns (also a sanity check that FR-FCFS scheduling costs
//! stay reasonable in wall-clock terms).

use nmpic_bench::timing::bench;
use nmpic_mem::{ChannelPort, HbmChannel, HbmConfig, Memory, WideRequest};

fn drive(chan: &mut HbmChannel, addrs: &[u64]) -> u64 {
    let mut issued = 0usize;
    let mut received = 0usize;
    let mut now = 0u64;
    while received < addrs.len() {
        if issued < addrs.len()
            && chan
                .try_request(now, WideRequest::read(addrs[issued], 0))
                .is_ok()
        {
            issued += 1;
        }
        chan.tick(now);
        while chan.pop_response(now).is_some() {
            received += 1;
        }
        now += 1;
    }
    now
}

fn main() {
    let n = 4096u64;
    let stream: Vec<u64> = (0..n).map(|i| i * 64).collect();
    let random: Vec<u64> = (0..n)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) % (1 << 20)) & !63)
        .collect();
    bench("hbm_channel/streaming", 10, n, || {
        let mut chan = HbmChannel::new(HbmConfig::default(), Memory::new(1 << 20));
        drive(&mut chan, &stream)
    });
    bench("hbm_channel/random", 10, n, || {
        let mut chan = HbmChannel::new(HbmConfig::default(), Memory::new(1 << 20));
        drive(&mut chan, &random)
    });
}
