//! Criterion benches of the HBM2 channel model: streaming vs random
//! access patterns (also a sanity check that FR-FCFS scheduling costs
//! stay reasonable in wall-clock terms).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nmpic_mem::{ChannelPort, HbmChannel, HbmConfig, Memory, WideRequest};

fn drive(chan: &mut HbmChannel, addrs: &[u64]) -> u64 {
    let mut issued = 0usize;
    let mut received = 0usize;
    let mut now = 0u64;
    while received < addrs.len() {
        if issued < addrs.len()
            && chan
                .try_request(now, WideRequest::read(addrs[issued], 0))
                .is_ok()
        {
            issued += 1;
        }
        chan.tick(now);
        while chan.pop_response(now).is_some() {
            received += 1;
        }
        now += 1;
    }
    now
}

fn channel_patterns(c: &mut Criterion) {
    let n = 4096u64;
    let stream: Vec<u64> = (0..n).map(|i| i * 64).collect();
    let random: Vec<u64> = (0..n)
        .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) % (1 << 20)) & !63)
        .collect();
    let mut group = c.benchmark_group("hbm_channel");
    group.throughput(Throughput::Bytes(n * 64));
    group.sample_size(20);
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut chan = HbmChannel::new(HbmConfig::default(), Memory::new(1 << 20));
            drive(&mut chan, &stream)
        })
    });
    group.bench_function("random", |b| {
        b.iter(|| {
            let mut chan = HbmChannel::new(HbmConfig::default(), Memory::new(1 << 20));
            drive(&mut chan, &random)
        })
    });
    group.finish();
}

criterion_group!(benches, channel_patterns);
criterion_main!(benches);
