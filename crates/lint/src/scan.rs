//! Source scanner: separates code from comments and string/char-literal
//! content, and marks test-gated regions.
//!
//! The rule matchers in [`crate::rules`] only ever look at the *code*
//! channel, so a doc example containing `.unwrap()`, a format string
//! containing `as u32`, or a comment discussing `panic!` can never trip
//! a lint. Conversely the allow-marker and justification-comment logic
//! only looks at the *comment* channel.
//!
//! This is a hand-rolled scanner, not a Rust parser: it understands
//! exactly as much syntax as the rules need — line and (nested) block
//! comments, plain/raw/byte string literals, char literals vs lifetimes,
//! attributes, and brace depth for `#[cfg(test)]` / `#[test]` region
//! tracking. Anything it cannot see (macro-generated code, multi-line
//! split of a single `as u32` cast) is an accepted false negative; the
//! workspace is rustfmt-formatted, which keeps those constructs on one
//! line in practice.

/// One scanned source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments and string/char-literal *content*
    /// blanked to spaces (delimiters kept), so column positions are
    /// preserved for reporting.
    pub code: String,
    /// Comment text carried by this line (line, block, and doc
    /// comments), with non-comment characters omitted.
    pub comment: String,
    /// `true` when the line belongs to a `#[cfg(test)]` or `#[test]`
    /// gated item (including the attribute line itself).
    pub test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str { esc: bool },
    RawStr { hashes: usize },
    CharLit { esc: bool },
}

/// Scans `source` into per-line code/comment channels and marks
/// test-gated regions. Never fails: unterminated literals simply blank
/// the remainder of the file, which only makes the linter *more*
/// conservative.
pub fn scan(source: &str) -> Vec<Line> {
    let mut lines = split_channels(source);
    mark_test_regions(&mut lines);
    lines
}

/// `Some((prefix_len, hashes))` when `chars[i..]` starts a raw string
/// literal (`r"`, `r#"`, `br"`, ...): `prefix_len` covers the `r`/`br`
/// prefix, `hashes` the `#` run.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j + hashes) == Some(&'#') {
        hashes += 1;
    }
    if chars.get(j + hashes) == Some(&'"') {
        Some((j - i, hashes))
    } else {
        None
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn split_channels(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    // Last significant code character, to keep `r"..."` raw-string
    // detection from firing inside identifiers like `var"`.
    let mut last_code: Option<char> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                test: false,
            });
            match mode {
                Mode::LineComment => mode = Mode::Code,
                // A `\` immediately before the newline continues the
                // string; the escape is spent on the newline itself.
                Mode::Str { .. } => mode = Mode::Str { esc: false },
                _ => {}
            }
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment { depth: 1 };
                    code.push_str("  ");
                    i += 2;
                } else if !last_code.is_some_and(is_ident_char)
                    && raw_string_start(&chars, i).is_some()
                {
                    // Raw (possibly byte) string literal start.
                    let (prefix, hashes) = raw_string_start(&chars, i).unwrap_or_default();
                    for k in 0..prefix + hashes + 1 {
                        code.push(chars[i + k]);
                    }
                    mode = Mode::RawStr { hashes };
                    last_code = Some('"');
                    i += prefix + hashes + 1;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str { esc: false };
                    last_code = Some('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a `'` starts a char
                    // literal when followed by an escape, or when the
                    // char after next closes it (`'a'`).
                    if next == Some('\\') {
                        code.push('\'');
                        mode = Mode::CharLit { esc: false };
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        last_code = Some('\'');
                        i += 3;
                    } else {
                        // Lifetime or loop label: keep as code.
                        code.push('\'');
                        last_code = Some('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    if !c.is_whitespace() {
                        last_code = Some(c);
                    }
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            Mode::BlockComment { depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment { depth: depth + 1 };
                    code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment { depth: depth - 1 };
                    }
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str { esc } => {
                if esc {
                    mode = Mode::Str { esc: false };
                    code.push(' ');
                    i += 1;
                } else if c == '\\' {
                    mode = Mode::Str { esc: true };
                    code.push(' ');
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                let closes = c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::CharLit { esc } => {
                if esc {
                    mode = Mode::CharLit { esc: false };
                    code.push(' ');
                    i += 1;
                } else if c == '\\' {
                    mode = Mode::CharLit { esc: true };
                    code.push(' ');
                    i += 1;
                } else if c == '\'' {
                    code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            test: false,
        });
    }
    lines
}

/// Marks every line that belongs to a `#[cfg(test)]`- or
/// `#[test]`-gated item: the attribute line(s), the item header, and
/// the brace-matched body. Operates on the code channel only, so
/// attributes quoted in comments or strings are invisible.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: usize = 0;
    // Brace depths at which a test region was entered; a region is
    // active while `depth >=` its entry.
    let mut regions: Vec<usize> = Vec::new();
    // Saw a test attribute, waiting for the item's `{` (or a `;` for
    // out-of-line `mod tests;`, which the path classifier handles).
    let mut pending = false;
    // Attribute text being captured across `#[ ... ]`, possibly over
    // multiple lines.
    let mut attr: Option<String> = None;
    let mut attr_brackets: usize = 0;
    for line in lines.iter_mut() {
        let mut line_test = !regions.is_empty() || pending || attr.is_some();
        let chars: Vec<char> = line.code.chars().collect();
        let mut k = 0;
        while k < chars.len() {
            let c = chars[k];
            if let Some(text) = attr.as_mut() {
                match c {
                    '[' => {
                        attr_brackets += 1;
                        text.push(c);
                    }
                    ']' => {
                        attr_brackets = attr_brackets.saturating_sub(1);
                        if attr_brackets == 0 {
                            let t: String = text.chars().filter(|ch| !ch.is_whitespace()).collect();
                            if t.contains("cfg(test)") || t.contains("cfg(all(test") || t == "test"
                            {
                                pending = true;
                                line_test = true;
                            }
                            attr = None;
                        } else {
                            text.push(c);
                        }
                    }
                    _ => text.push(c),
                }
                k += 1;
                continue;
            }
            match c {
                '#' if chars.get(k + 1) == Some(&'[') => {
                    attr = Some(String::new());
                    attr_brackets = 1;
                    k += 2;
                    continue;
                }
                '{' => {
                    depth += 1;
                    if pending {
                        regions.push(depth);
                        pending = false;
                        line_test = true;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                ';' => {
                    // Semicolon item (e.g. `#[cfg(test)] mod tests;`):
                    // nothing to brace-match here.
                    pending = false;
                }
                _ => {}
            }
            if !regions.is_empty() {
                line_test = true;
            }
            k += 1;
        }
        line.test = line_test || !regions.is_empty() || pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let got = code_of("let s = \"x as u32 .unwrap()\";\n");
        assert!(!got[0].contains("as u32"));
        assert!(!got[0].contains("unwrap"));
        assert!(got[0].contains("let s = \""));
    }

    #[test]
    fn comments_are_split_out() {
        let lines = scan("let a = 1; // call .unwrap() later\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains(".unwrap() later"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan("a /* one /* two */ still */ b\n/* open\nstill comment panic!()\n*/ c\n");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[2].code.contains("panic"));
        assert!(lines[2].comment.contains("panic!()"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn raw_strings_including_hashes() {
        let got =
            code_of("let r = r#\"contains .unwrap() and \"quotes\" here\"#;\nlet after = 1;\n");
        assert!(!got[0].contains("unwrap"));
        assert!(got[1].contains("let after = 1;"), "{:?}", got[1]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let got = code_of("let c = '\"'; let q: Vec<'a> = f::<'b>(); let n = '\\n';\n");
        // The quote char content is blanked, so the string machinery
        // never turns on and the rest of the line stays code.
        assert!(got[0].contains("let q: Vec<'a>"));
        assert!(got[0].contains("let n ="));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let got = code_of("let s = \"a\\\" as u8\"; let t = 2;\n");
        assert!(!got[0].contains("as u8"));
        assert!(got[0].contains("let t = 2;"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        let flags: Vec<bool> = lines.iter().map(|l| l.test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_region_is_marked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    boom();\n}\nfn b() {}\n";
        let flags: Vec<bool> = scan(src).iter().map(|l| l.test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_in_string_or_comment_is_ignored() {
        let src = "let s = \"#[cfg(test)]\"; // #[cfg(test)]\nfn real() {}\n";
        let flags: Vec<bool> = scan(src).iter().map(|l| l.test).collect();
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    fn out_of_line_test_mod_does_not_poison_the_rest() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() {}\n";
        let flags: Vec<bool> = scan(src).iter().map(|l| l.test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }
}
