//! # nmpic-lint — workspace invariant checker
//!
//! A dependency-free static-analysis pass over every `.rs` file in the
//! workspace, enforcing the domain invariants behind the repo's core
//! contract — bit-identical SpMV results across backends, worker counts,
//! and execution modes — that no generic tool flags:
//!
//! | rule | slug | invariant |
//! |------|------|-----------|
//! | `L1` | `narrowing-cast` | no narrowing `as` casts in library code (`as u32/u16/u8`; `as usize` inside `crates/mem`, whose cast sources are u64 addresses) |
//! | `L2` | `panic-path` | no `unwrap()`/`expect()`/`panic!` in library code outside tests |
//! | `L3` | `unordered-float` | no f64 accumulation driven by `HashMap`/`HashSet` iteration order |
//! | `L4` | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `L5` | `relaxed-ordering` | every `Ordering::Relaxed` carries a justification comment |
//! | `L6` | `wall-clock` | no `Instant::now`/`SystemTime` outside `nmpic_bench::timing` |
//! | `L7` | `service-lock` | no unaudited `std::sync::Mutex`/`RwLock` in the serving front-end (`crates/system/src/service.rs`) |
//!
//! Violations are suppressed only by an explicit, audited marker:
//!
//! ```text
//! // nmpic-lint: allow(L1) — row < rows <= u32::MAX: checked at construction
//! ```
//!
//! on the offending line or alone on the line directly above it. The
//! reason is mandatory — a marker without one is itself a violation
//! (`M0`). Run the checker with `cargo run -p nmpic-lint --release`; it
//! exits non-zero on any unsuppressed violation, which is what the CI
//! `invariants` job gates on.
//!
//! The scanner is hand-rolled (same precedent as the vendored PRNG in
//! `nmpic_sim::rng`): no syn/proc-macro dependency, so the linter builds
//! in well under a second on a cold runner and can never be broken by an
//! upstream parser release. See [`scan`] for exactly what it understands
//! and the accepted false-negative surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod scan;

pub use rules::{FileReport, Rule, Violation};

use std::path::{Path, PathBuf};

/// How a file's path classifies it for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Lib,
    /// Executable source (`src/bin/`, `examples/`, `benches/`): panic
    /// and narrowing-cast rules are relaxed (a CLI aborting on error is
    /// its contract), determinism rules (L3, L5, L6) still apply.
    Bin,
    /// Test source (`tests/` trees and out-of-line `tests.rs` modules):
    /// only marker hygiene applies.
    Test,
}

/// Workspace-level lint policy: which paths the `as usize` subrule and
/// the wall-clock exemption apply to.
#[derive(Debug, Clone, Default)]
pub struct Workspace;

impl Workspace {
    /// Classifies a workspace-relative path.
    pub fn classify(&self, path: &str) -> FileKind {
        let p = path.replace('\\', "/");
        if p.starts_with("tests/") || p.contains("/tests/") || p.ends_with("/tests.rs") {
            FileKind::Test
        } else if p.starts_with("examples/")
            || p.contains("/examples/")
            || p.contains("/src/bin/")
            || p.contains("/benches/")
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }

    /// L4 applies to crate roots (every `src/lib.rs`).
    pub fn is_crate_root(&self, path: &str) -> bool {
        let p = path.replace('\\', "/");
        p == "src/lib.rs" || p.ends_with("/src/lib.rs")
    }

    /// L1's `as usize` subrule: only inside `crates/mem`, where the
    /// cast sources are u64 byte addresses and line numbers that would
    /// silently truncate on a 32-bit target.
    pub fn usize_cast_applies(&self, path: &str) -> bool {
        path.replace('\\', "/").contains("crates/mem/src/")
    }

    /// L6 exemption: the one module allowed to read the wall clock.
    pub fn clock_exempt(&self, path: &str) -> bool {
        path.replace('\\', "/").ends_with("bench/src/timing.rs")
    }

    /// L7 scope: the serving front-end, whose concurrency contract is
    /// atomics-first — every blocking `Mutex`/`RwLock` there must be
    /// individually audited.
    pub fn service_lock_applies(&self, path: &str) -> bool {
        path.replace('\\', "/").ends_with("system/src/service.rs")
    }
}

/// Lints one source text under its workspace-relative `path` (the path
/// drives classification and the path-scoped rules).
pub fn lint_source(path: &str, source: &str) -> FileReport {
    let ws = Workspace;
    let lines = scan::scan(source);
    let ctx = rules::FileContext {
        path,
        kind: ws.classify(path),
        lines: &lines,
        ws: &ws,
    };
    rules::lint_file(&ctx)
}

/// Whole-workspace lint result.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Files scanned.
    pub files: usize,
    /// Unsuppressed violations across all files, sorted by path and line.
    pub violations: Vec<Violation>,
    /// Violations silenced by well-formed allow-markers.
    pub suppressed: usize,
}

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "results", "related", "node_modules"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks every `.rs` file under `root` (skipping `target/`, `results/`,
/// VCS and hidden directories) and lints each one.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut report = WorkspaceReport::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        let fr = lint_source(&rel, &source);
        report.files += 1;
        report.suppressed += fr.suppressed;
        report.violations.extend(fr.violations);
    }
    report
        .violations
        .sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    Ok(report)
}
