//! The seven domain rules and the allow-marker protocol.
//!
//! Every rule matches on the scanner's *code* channel only
//! ([`crate::scan::Line::code`]), so trigger tokens inside strings, doc
//! examples, and comments are invisible. Suppression is explicit and
//! audited: `// nmpic-lint: allow(<rule>) — <reason>` on the offending
//! line (or alone on the line directly above it); a marker without a
//! readable reason is itself a violation (`M0`).

use crate::scan::Line;
use crate::{FileKind, Workspace};

/// The rules enforced by `nmpic-lint`. Display ids `L1`–`L6` match the
/// issue/README nomenclature; slugs are accepted interchangeably in
/// allow-markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1 — no narrowing `as` casts (`as u32`/`u16`/`u8` everywhere;
    /// `as usize` additionally inside `crates/mem`, where the cast
    /// source is u64 address/line math that would truncate on a 32-bit
    /// target). Use `try_into` + a typed error, or cite the bound.
    NarrowingCast,
    /// L2 — no `unwrap()`/`expect()`/`panic!` in library code outside
    /// tests: fallible paths carry typed errors; true invariants get an
    /// invariant-named `expect` behind an allow-marker.
    PanicPath,
    /// L3 — no float accumulation driven by unordered (`HashMap`/
    /// `HashSet`) iteration: iteration order would change the f64
    /// rounding sequence and break the byte-identity contract.
    UnorderedFloat,
    /// L4 — every crate root carries `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// L5 — every `Ordering::Relaxed` carries a justification comment
    /// mentioning `Relaxed` on the same or one of the three preceding
    /// lines.
    RelaxedOrdering,
    /// L6 — no `Instant::now`/`SystemTime` outside `nmpic_bench::timing`:
    /// wall-clock reads anywhere else would leak nondeterminism into
    /// simulated results.
    WallClock,
    /// L7 — every `std::sync::Mutex`/`RwLock` in the serving front-end
    /// (`crates/system/src/service.rs`) carries an audited allow-marker:
    /// the service's hot paths are atomics-first, so each blocking lock
    /// must name the reason it is held briefly and never nested.
    ServiceLock,
    /// M0 — a malformed `nmpic-lint:` marker: unparseable, naming an
    /// unknown rule, or missing the mandatory reason text.
    Marker,
}

impl Rule {
    /// All suppressible rules, for marker validation.
    pub const ALL: [Rule; 7] = [
        Rule::NarrowingCast,
        Rule::PanicPath,
        Rule::UnorderedFloat,
        Rule::ForbidUnsafe,
        Rule::RelaxedOrdering,
        Rule::WallClock,
        Rule::ServiceLock,
    ];

    /// Short display id (`L1`..`L7`, `M0`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::NarrowingCast => "L1",
            Rule::PanicPath => "L2",
            Rule::UnorderedFloat => "L3",
            Rule::ForbidUnsafe => "L4",
            Rule::RelaxedOrdering => "L5",
            Rule::WallClock => "L6",
            Rule::ServiceLock => "L7",
            Rule::Marker => "M0",
        }
    }

    /// Human-readable slug, accepted in allow-markers next to the id.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NarrowingCast => "narrowing-cast",
            Rule::PanicPath => "panic-path",
            Rule::UnorderedFloat => "unordered-float",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::RelaxedOrdering => "relaxed-ordering",
            Rule::WallClock => "wall-clock",
            Rule::ServiceLock => "service-lock",
            Rule::Marker => "marker",
        }
    }

    /// Parses an id or slug (case-insensitive). `M0` is not allowable:
    /// a marker cannot suppress marker hygiene.
    pub fn from_name(name: &str) -> Option<Rule> {
        let n = name.trim().to_ascii_lowercase();
        Rule::ALL
            .into_iter()
            .find(|r| n == r.id().to_ascii_lowercase() || n == r.slug())
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.id(), self.slug())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// What happened and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lint result for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed violations, in line order.
    pub violations: Vec<Violation>,
    /// Violations silenced by a well-formed allow-marker.
    pub suppressed: usize,
}

/// A parsed `nmpic-lint:` marker.
enum ParsedMarker {
    Allow(Vec<Rule>),
    Malformed(String),
}

/// Parses the marker protocol out of a line's comment text. `None` when
/// the comment does not *lead* with `nmpic-lint` (after doc-comment
/// sigils): prose that merely mentions the marker syntax mid-sentence —
/// this module's own documentation, say — is not a marker.
fn parse_marker(comment: &str) -> Option<ParsedMarker> {
    let lead = comment.trim_start_matches(['/', '!', '*', ' ', '\t']);
    if !lead.starts_with("nmpic-lint") {
        return None;
    }
    let rest = lead["nmpic-lint".len()..].trim_start();
    let rest = match rest.strip_prefix(':') {
        Some(r) => r.trim_start(),
        None => {
            return Some(ParsedMarker::Malformed(
                "expected `nmpic-lint: allow(...)`".into(),
            ))
        }
    };
    let rest = match rest.strip_prefix("allow") {
        Some(r) => r.trim_start(),
        None => {
            return Some(ParsedMarker::Malformed(
                "expected `allow(<rule>)` after `nmpic-lint:`".into(),
            ))
        }
    };
    let rest = match rest.strip_prefix('(') {
        Some(r) => r,
        None => return Some(ParsedMarker::Malformed("expected `(` after `allow`".into())),
    };
    let close = match rest.find(')') {
        Some(c) => c,
        None => return Some(ParsedMarker::Malformed("unclosed `allow(`".into())),
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Some(ParsedMarker::Malformed(format!(
                    "unknown rule `{}` (want L1-L6 or a slug like narrowing-cast)",
                    name.trim()
                )))
            }
        }
    }
    if rules.is_empty() {
        return Some(ParsedMarker::Malformed("empty allow() list".into()));
    }
    // Mandatory reason: whatever follows the `)` minus leading
    // separator punctuation must be readable text.
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim();
    if reason.len() < 3 {
        return Some(ParsedMarker::Malformed(
            "missing reason: write `allow(<rule>) — <why this is sound>`".into(),
        ));
    }
    Some(ParsedMarker::Allow(rules))
}

fn stripped(code: &str) -> String {
    code.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Identifier tokens of a code line with their char start positions.
fn tokens(code: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let bytes = code.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (start, c) = bytes[i];
        if c.is_alphanumeric() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].1.is_alphanumeric() || bytes[j].1 == '_') {
                j += 1;
            }
            let end = if j < bytes.len() {
                bytes[j].0
            } else {
                code.len()
            };
            out.push((start, &code[start..end]));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// `true` when only whitespace separates byte positions `a..b`.
fn gap_is_space(code: &str, a: usize, b: usize) -> bool {
    code.get(a..b)
        .is_some_and(|g| g.chars().all(char::is_whitespace))
}

/// Context shared by the per-line matchers.
pub struct FileContext<'a> {
    /// Workspace-relative path (drives classification and reporting).
    pub path: &'a str,
    /// Rule applicability class derived from the path.
    pub kind: FileKind,
    /// Scanned lines of the file.
    pub lines: &'a [Line],
    /// Workspace-level policy knobs (paths where the `as usize` subrule
    /// of L1 applies, clock-exempt files).
    pub ws: &'a Workspace,
}

/// Runs every applicable rule over one scanned file.
pub fn lint_file(ctx: &FileContext<'_>) -> FileReport {
    let mut report = FileReport::default();
    let mut raw: Vec<Violation> = Vec::new();

    // --- Marker collection -------------------------------------------------
    // allowed[i] = rules suppressible on line i (0-based).
    let mut allowed: Vec<Vec<Rule>> = vec![Vec::new(); ctx.lines.len()];
    for (i, line) in ctx.lines.iter().enumerate() {
        match parse_marker(&line.comment) {
            None => {}
            Some(ParsedMarker::Malformed(msg)) => {
                // Marker hygiene is enforced everywhere, including test
                // code: a bad marker anywhere rots the audit trail.
                raw.push(Violation {
                    path: ctx.path.to_string(),
                    line: i + 1,
                    rule: Rule::Marker,
                    message: msg,
                });
            }
            Some(ParsedMarker::Allow(rules)) => {
                // A marker on a code-free line covers the next line that
                // carries code; on a code-carrying line it covers that
                // line itself.
                let target = if line.code.trim().is_empty() {
                    ctx.lines
                        .iter()
                        .enumerate()
                        .skip(i + 1)
                        .find(|(_, l)| !l.code.trim().is_empty())
                        .map(|(j, _)| j)
                } else {
                    Some(i)
                };
                if let Some(t) = target {
                    allowed[t].extend(rules);
                }
            }
        }
    }

    let lib = ctx.kind == FileKind::Lib;
    let lib_or_bin = matches!(ctx.kind, FileKind::Lib | FileKind::Bin);
    let mem_usize = ctx.ws.usize_cast_applies(ctx.path);
    let clock_exempt = ctx.ws.clock_exempt(ctx.path);
    let service_lock = ctx.ws.service_lock_applies(ctx.path);

    // --- L1 / L2 / L5 / L6: per-line token matchers ------------------------
    for (i, line) in ctx.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = line.code.as_str();
        let toks = tokens(code);
        if lib {
            for w in 0..toks.len().saturating_sub(1) {
                let (apos, a) = toks[w];
                let (bpos, b) = toks[w + 1];
                if a != "as" || !gap_is_space(code, apos + a.len(), bpos) {
                    continue;
                }
                let narrow = matches!(b, "u32" | "u16" | "u8") || (mem_usize && b == "usize");
                if narrow {
                    raw.push(Violation {
                        path: ctx.path.to_string(),
                        line: i + 1,
                        rule: Rule::NarrowingCast,
                        message: format!(
                            "narrowing `as {b}` cast in library code — use `try_into` with a \
                             typed error, or add `// nmpic-lint: allow(L1) — <bound>`"
                        ),
                    });
                }
            }
            for &(pos, t) in &toks {
                let before = code[..pos].trim_end().chars().last();
                let after = code[pos + t.len()..].trim_start().chars().next();
                let hit = match t {
                    "unwrap" | "expect" => before == Some('.') && after == Some('('),
                    "panic" => after == Some('!'),
                    _ => false,
                };
                if hit {
                    raw.push(Violation {
                        path: ctx.path.to_string(),
                        line: i + 1,
                        rule: Rule::PanicPath,
                        message: format!(
                            "`{t}` in library code — return a typed error, or name the invariant \
                             behind `// nmpic-lint: allow(L2) — <invariant>`"
                        ),
                    });
                }
            }
        }
        if lib_or_bin {
            let s = stripped(code);
            if s.contains("Ordering::Relaxed") {
                let justified =
                    (i.saturating_sub(3)..=i).any(|j| ctx.lines[j].comment.contains("Relaxed"));
                if !justified {
                    raw.push(Violation {
                        path: ctx.path.to_string(),
                        line: i + 1,
                        rule: Rule::RelaxedOrdering,
                        message: "`Ordering::Relaxed` without a justification comment mentioning \
                                  `Relaxed` on this or the three preceding lines"
                            .to_string(),
                    });
                }
            }
            if service_lock {
                // Exact-token match: `MutexGuard`/`RwLockReadGuard` are
                // distinct identifiers and stay legal unmarked.
                for &(_, t) in &toks {
                    if t == "Mutex" || t == "RwLock" {
                        raw.push(Violation {
                            path: ctx.path.to_string(),
                            line: i + 1,
                            rule: Rule::ServiceLock,
                            message: format!(
                                "blocking `{t}` in the serving front-end — prefer atomics, or \
                                 audit the lock with `// nmpic-lint: allow(L7) — <held briefly \
                                 because ...>`"
                            ),
                        });
                    }
                }
            }
            if !clock_exempt && (s.contains("Instant::now") || s.contains("SystemTime")) {
                raw.push(Violation {
                    path: ctx.path.to_string(),
                    line: i + 1,
                    rule: Rule::WallClock,
                    message: "wall-clock read outside `nmpic_bench::timing` — route timing \
                              through `timing::Stopwatch`/`timing::bench` so simulated results \
                              stay deterministic"
                        .to_string(),
                });
            }
        }
    }

    // --- L3: unordered iteration feeding accumulation ----------------------
    if lib_or_bin {
        unordered_float(ctx, &mut raw);
    }

    // --- L4: crate roots forbid unsafe -------------------------------------
    if ctx.ws.is_crate_root(ctx.path) {
        let has = ctx
            .lines
            .iter()
            .any(|l| stripped(&l.code).contains("#![forbid(unsafe_code)]"));
        if !has {
            raw.push(Violation {
                path: ctx.path.to_string(),
                line: 1,
                rule: Rule::ForbidUnsafe,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    // --- Apply suppression -------------------------------------------------
    for v in raw {
        let idx = v.line - 1;
        let is_allowed =
            v.rule != Rule::Marker && allowed.get(idx).is_some_and(|rs| rs.contains(&v.rule));
        if is_allowed {
            report.suppressed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report.violations.sort_by_key(|v| (v.line, v.rule.id()));
    report
}

/// L3: a `for` loop iterating a `HashMap`/`HashSet` (directly or via an
/// identifier bound to one in this file) whose body accumulates with
/// `+=`, or a same-line `.sum(...)` over such an identifier. Iteration
/// order of the std hash containers is unspecified, so any float
/// accumulation they drive is a byte-identity hazard.
fn unordered_float(ctx: &FileContext<'_>, raw: &mut Vec<Violation>) {
    // Pass 1: identifiers bound to hash containers anywhere in the file
    // (let bindings, fn params, struct fields — anything shaped
    // `name: [&]HashMap<..>` or `name = HashMap::new()`).
    let mut tracked: Vec<String> = Vec::new();
    for line in ctx.lines {
        let code = line.code.as_str();
        let toks = tokens(code);
        for &(pos, t) in &toks {
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            if let Some(name) = binding_before(code, pos) {
                if !tracked.contains(&name) {
                    tracked.push(name);
                }
            }
        }
    }

    for (i, line) in ctx.lines.iter().enumerate() {
        if line.test {
            continue;
        }
        let code = line.code.as_str();
        let toks = tokens(code);
        // Same-line reduction: `tracked.values().sum::<f64>()` etc.
        let s = stripped(code);
        if (s.contains(".sum(") || s.contains(".sum::<"))
            && toks
                .iter()
                .any(|(_, t)| *t == "HashMap" || *t == "HashSet" || tracked.iter().any(|n| n == t))
        {
            raw.push(Violation {
                path: ctx.path.to_string(),
                line: i + 1,
                rule: Rule::UnorderedFloat,
                message: "`.sum()` over an unordered hash container — collect and sort keys \
                          first so the f64 rounding sequence is deterministic"
                    .to_string(),
            });
            continue;
        }
        // `for <pat> in <expr-with-hash-container> { ... += ... }`
        let for_pos = toks.iter().position(|(_, t)| *t == "for");
        let Some(fp) = for_pos else { continue };
        let Some(in_tok) = toks.iter().skip(fp + 1).find(|(_, t)| *t == "in") else {
            continue;
        };
        let expr = &code[in_tok.0 + 2..];
        let expr_toks = tokens(expr);
        let hashy = expr_toks
            .iter()
            .any(|(_, t)| *t == "HashMap" || *t == "HashSet" || tracked.iter().any(|n| n == t));
        if !hashy {
            continue;
        }
        if body_accumulates(ctx.lines, i, in_tok.0 + 2) {
            raw.push(Violation {
                path: ctx.path.to_string(),
                line: i + 1,
                rule: Rule::UnorderedFloat,
                message: "`for` over an unordered hash container accumulates with `+=` — \
                          iterate in a sorted/first-appearance order instead (byte-identity \
                          contract)"
                    .to_string(),
            });
        }
    }
}

/// Walks the brace-matched body of a `for` whose header starts on
/// `lines[start]` at char `from`, returning `true` when the body
/// contains a `+=` in code.
fn body_accumulates(lines: &[Line], start: usize, from: usize) -> bool {
    let mut depth = 0usize;
    let mut opened = false;
    let mut prev_plus = false;
    for (li, line) in lines.iter().enumerate().skip(start) {
        let code = line.code.as_str();
        let skip = if li == start { from } else { 0 };
        for c in code.chars().skip(skip) {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return false;
                    }
                }
                '=' if prev_plus && opened && depth >= 1 => return true,
                _ => {}
            }
            prev_plus = c == '+';
        }
        // Safety valve: an unclosed body (scan artifact) stops the walk.
        if li > start + 400 {
            return false;
        }
    }
    false
}

/// For a hash-container type token at `pos`, finds the identifier it is
/// bound to: handles `name: [&mut] HashMap<..>`, paths like
/// `std::collections::HashMap`, and `let name = HashMap::new()`.
fn binding_before(code: &str, pos: usize) -> Option<String> {
    let before: Vec<char> = code[..pos].chars().collect();
    let mut i = before.len();
    // Skip backwards over type-position chars: whitespace, `&`, `<`,
    // `mut`, and `path::` segments.
    loop {
        while i > 0
            && (before[i - 1].is_whitespace() || before[i - 1] == '&' || before[i - 1] == '<')
        {
            i -= 1;
        }
        if i >= 2 && before[i - 1] == ':' && before[i - 2] == ':' {
            i -= 2;
            // Skip the path segment ident.
            while i > 0 && (before[i - 1].is_alphanumeric() || before[i - 1] == '_') {
                i -= 1;
            }
            continue;
        }
        break;
    }
    if i == 0 {
        return None;
    }
    if before[i - 1] == ':' {
        // `name : HashMap<..>`
        i -= 1;
        while i > 0 && before[i - 1].is_whitespace() {
            i -= 1;
        }
        let end = i;
        while i > 0 && (before[i - 1].is_alphanumeric() || before[i - 1] == '_') {
            i -= 1;
        }
        let name: String = before[i..end].iter().collect();
        return non_keyword(name);
    }
    if before[i - 1] == '=' {
        // `let [mut] name = HashMap::new()`
        i -= 1;
        while i > 0 && before[i - 1].is_whitespace() {
            i -= 1;
        }
        let end = i;
        while i > 0 && (before[i - 1].is_alphanumeric() || before[i - 1] == '_') {
            i -= 1;
        }
        let name: String = before[i..end].iter().collect();
        return non_keyword(name);
    }
    None
}

fn non_keyword(name: String) -> Option<String> {
    let kw = ["let", "mut", "pub", "use", "in", "ref", "move"];
    if name.is_empty()
        || kw.contains(&name.as_str())
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        None
    } else {
        Some(name)
    }
}
