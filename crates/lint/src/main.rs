//! CLI entry point: `nmpic-lint [ROOT]`.
//!
//! Lints every `.rs` file under `ROOT` (default: the current directory)
//! and prints one line per unsuppressed violation. Exit status: `0`
//! clean, `1` violations found, `2` I/O failure — the CI `invariants`
//! job runs this as a hard gate.

use std::path::PathBuf;

fn main() {
    let root: PathBuf = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let report = match nmpic_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("nmpic-lint: cannot walk {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    println!(
        "nmpic-lint: {} files, {} violation{}, {} suppressed by allow-markers",
        report.files,
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        report.suppressed
    );
    if !report.violations.is_empty() {
        std::process::exit(1);
    }
}
