//! Liveness fixtures for every rule: each one must trip on a minimal
//! violating source, stay quiet on the compliant variant, be
//! suppressible by a well-formed allow-marker, and ignore trigger text
//! hidden in strings or comments. A rule without a must-trip fixture
//! could silently die in a refactor and nobody would notice — these
//! tests are the linter's own regression net.

use nmpic_lint::{lint_source, FileReport, Rule};

const LIB: &str = "crates/foo/src/algo.rs";
const ROOT: &str = "crates/foo/src/lib.rs";
const BIN: &str = "crates/foo/src/bin/tool.rs";
const TEST: &str = "crates/foo/tests/check.rs";
const MEM: &str = "crates/mem/src/cache.rs";
const CLOCK_OK: &str = "crates/bench/src/timing.rs";

fn rules(r: &FileReport) -> Vec<Rule> {
    r.violations.iter().map(|v| v.rule).collect()
}

fn assert_clean(r: &FileReport) {
    assert!(
        r.violations.is_empty(),
        "expected clean, got: {:?}",
        r.violations
    );
}

// --- L1: narrowing casts -------------------------------------------------

#[test]
fn l1_trips_on_narrowing_casts_in_lib_code() {
    for ty in ["u32", "u16", "u8"] {
        let src = format!("pub fn f(x: u64) -> {ty} {{\n    x as {ty}\n}}\n");
        let r = lint_source(LIB, &src);
        assert_eq!(rules(&r), [Rule::NarrowingCast], "as {ty}");
        assert_eq!(r.violations[0].line, 2);
    }
}

#[test]
fn l1_passes_on_widening_and_checked_conversions() {
    let src = "pub fn f(x: u32) -> u64 {\n    let _ = u32::try_from(9u64);\n    x as u64\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn l1_usize_subrule_applies_only_inside_crates_mem() {
    let src = "pub fn f(addr: u64) -> usize {\n    addr as usize\n}\n";
    let r = lint_source(MEM, src);
    assert_eq!(rules(&r), [Rule::NarrowingCast], "mem path must trip");
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn l1_is_relaxed_in_bins_and_tests() {
    let src = "fn main() {\n    let _ = 9u64 as u32;\n}\n";
    assert_clean(&lint_source(BIN, src));
    assert_clean(&lint_source(TEST, src));
}

// --- L2: panic paths -----------------------------------------------------

#[test]
fn l2_trips_on_unwrap_expect_and_panic() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::PanicPath]);
    let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.expect(\"set\")\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::PanicPath]);
    let src = "pub fn f() {\n    panic!(\"boom\");\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::PanicPath]);
}

#[test]
fn l2_passes_on_typed_error_flow() {
    let src = "pub fn f(o: Option<u32>) -> Result<u32, String> {\n    o.ok_or_else(|| \"missing\".to_string())\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn l2_is_relaxed_in_bins_tests_and_cfg_test_modules() {
    let src = "fn main() {\n    std::env::args().next().unwrap();\n}\n";
    assert_clean(&lint_source(BIN, src));
    assert_clean(&lint_source(TEST, src));
    let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u32>.unwrap();\n    }\n}\n";
    assert_clean(&lint_source(LIB, src));
}

// --- L3: float accumulation over unordered iteration ---------------------

#[test]
fn l3_trips_on_accumulating_over_a_hashmap() {
    let src = "use std::collections::HashMap;\npub fn total(m: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    for (_, v) in m.iter() {\n        acc += v;\n    }\n    acc\n}\n";
    let r = lint_source(LIB, src);
    assert_eq!(rules(&r), [Rule::UnorderedFloat]);
    assert_eq!(r.violations[0].line, 4, "flags the `for`, not the `+=`");
}

#[test]
fn l3_trips_on_same_line_sum_over_a_hash_container() {
    let src = "use std::collections::HashMap;\npub fn total(m: &HashMap<u32, f64>) -> f64 {\n    m.values().sum::<f64>()\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::UnorderedFloat]);
}

#[test]
fn l3_passes_when_keys_are_sorted_first() {
    let src = "use std::collections::HashMap;\npub fn total(m: &HashMap<u32, f64>) -> f64 {\n    let mut keys: Vec<u32> = m.keys().copied().collect();\n    keys.sort_unstable();\n    let mut acc = 0.0;\n    for k in keys {\n        acc += m[&k];\n    }\n    acc\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn l3_passes_on_ordered_containers() {
    let src = "pub fn total(v: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for x in v {\n        acc += x;\n    }\n    acc\n}\n";
    assert_clean(&lint_source(LIB, src));
}

// --- L4: forbid(unsafe_code) in crate roots ------------------------------

#[test]
fn l4_trips_on_a_crate_root_without_forbid_unsafe() {
    let r = lint_source(ROOT, "pub fn f() {}\n");
    assert_eq!(rules(&r), [Rule::ForbidUnsafe]);
    assert_eq!(r.violations[0].line, 1);
}

#[test]
fn l4_passes_with_the_attribute_and_ignores_non_roots() {
    let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert_clean(&lint_source(ROOT, src));
    assert_clean(&lint_source(LIB, "pub fn f() {}\n"));
}

// --- L5: Relaxed ordering justification ----------------------------------

#[test]
fn l5_trips_on_unjustified_relaxed() {
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(n: &AtomicUsize) -> usize {\n    n.fetch_add(1, Ordering::Relaxed)\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::RelaxedOrdering]);
}

#[test]
fn l5_passes_with_a_nearby_justification_comment() {
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn f(n: &AtomicUsize) -> usize {\n    // Relaxed suffices: the counter is only a statistic.\n    n.fetch_add(1, Ordering::Relaxed)\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn l5_justification_window_is_three_lines() {
    let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n// Relaxed suffices: ticket counter.\npub fn f(n: &AtomicUsize) -> usize {\n    let x = 1;\n    let y = x;\n    let z = y;\n    n.fetch_add(z, Ordering::Relaxed)\n}\n";
    assert_eq!(
        rules(&lint_source(LIB, src)),
        [Rule::RelaxedOrdering],
        "a comment four lines up must not count"
    );
}

// --- L6: wall-clock reads ------------------------------------------------

#[test]
fn l6_trips_everywhere_except_the_timing_module() {
    let src = "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::WallClock]);
    assert_eq!(
        rules(&lint_source(BIN, src)),
        [Rule::WallClock],
        "bins measure through timing::Stopwatch too"
    );
    assert_clean(&lint_source(CLOCK_OK, src));
    let sys = "pub fn f() -> u64 {\n    let _ = std::time::SystemTime::now();\n    0\n}\n";
    assert_eq!(rules(&lint_source(LIB, sys)), [Rule::WallClock]);
}

// --- L7: audited locks in the serving front-end ---------------------------

const SERVICE: &str = "crates/system/src/service.rs";

#[test]
fn l7_trips_on_unaudited_mutex_and_rwlock_in_the_service() {
    let src = "use std::sync::Mutex;\npub struct S {\n    state: Mutex<u32>,\n}\n";
    let r = lint_source(SERVICE, src);
    assert_eq!(rules(&r), [Rule::ServiceLock, Rule::ServiceLock]);
    let src = "pub struct S {\n    plans: std::sync::RwLock<u32>,\n}\n";
    assert_eq!(rules(&lint_source(SERVICE, src)), [Rule::ServiceLock]);
}

#[test]
fn l7_applies_only_to_the_service_module() {
    let src = "use std::sync::Mutex;\npub struct S {\n    state: Mutex<u32>,\n}\n";
    assert_clean(&lint_source(LIB, src));
    assert_clean(&lint_source(BIN, src));
}

#[test]
fn l7_guard_types_and_test_code_stay_legal_unmarked() {
    // `MutexGuard`/`RwLockReadGuard` are distinct identifier tokens.
    let src = "use std::sync::MutexGuard;\npub fn f(g: MutexGuard<'_, u32>) -> u32 {\n    *g\n}\n";
    assert_clean(&lint_source(SERVICE, src));
    let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    #[test]\n    fn t() {\n        let _ = Mutex::new(0u32);\n    }\n}\n";
    assert_clean(&lint_source(SERVICE, src));
}

#[test]
fn l7_is_suppressible_by_an_audited_marker() {
    let src = "pub struct S {\n    // nmpic-lint: allow(L7) — held briefly: push/pop only, never across run_batch\n    state: std::sync::Mutex<u32>,\n}\n";
    let r = lint_source(SERVICE, src);
    assert_clean(&r);
    assert_eq!(r.suppressed, 1);
    assert!(Rule::from_name("service-lock").is_some());
}

// --- Allow-marker protocol -----------------------------------------------

#[test]
fn markers_suppress_on_the_same_line() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap() // nmpic-lint: allow(L2) — invariant: caller checked is_some\n}\n";
    let r = lint_source(LIB, src);
    assert_clean(&r);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn markers_on_their_own_line_cover_the_next_code_line() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n    // nmpic-lint: allow(L2) — invariant: caller checked is_some\n    o.unwrap()\n}\n";
    let r = lint_source(LIB, src);
    assert_clean(&r);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn markers_do_not_bleed_past_the_next_code_line() {
    let src = "pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n    // nmpic-lint: allow(L2) — invariant: caller checked is_some\n    let x = a.unwrap();\n    x + b.unwrap()\n}\n";
    let r = lint_source(LIB, src);
    assert_eq!(rules(&r), [Rule::PanicPath], "second unwrap stays flagged");
    assert_eq!(r.violations[0].line, 4);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn markers_accept_slugs_and_only_suppress_the_named_rule() {
    let src = "pub fn f(o: Option<u64>) -> u32 {\n    // nmpic-lint: allow(panic-path) — invariant: caller checked is_some\n    o.unwrap() as u32\n}\n";
    let r = lint_source(LIB, src);
    assert_eq!(
        rules(&r),
        [Rule::NarrowingCast],
        "the cast is not covered by a panic-path marker"
    );
    assert_eq!(r.suppressed, 1);
}

#[test]
fn malformed_markers_are_their_own_violation() {
    // Unknown rule name.
    let src = "pub fn f() {} // nmpic-lint: allow(L9) — no such rule\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::Marker]);
    // Missing mandatory reason.
    let src = "pub fn f() {} // nmpic-lint: allow(L1)\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::Marker]);
    // Reason that is only separator punctuation.
    let src = "pub fn f() {} // nmpic-lint: allow(L1) —\n";
    assert_eq!(rules(&lint_source(LIB, src)), [Rule::Marker]);
    // Marker hygiene holds even in test files.
    let src = "fn t() {} // nmpic-lint: allow(L1)\n";
    assert_eq!(rules(&lint_source(TEST, src)), [Rule::Marker]);
}

#[test]
fn m0_cannot_be_allowed_away() {
    assert!(Rule::from_name("M0").is_none());
    assert!(Rule::from_name("marker").is_none());
    assert!(Rule::from_name("L2").is_some());
    assert!(Rule::from_name("wall-clock").is_some());
}

// --- False-positive guards: strings and comments are invisible -----------

#[test]
fn trigger_text_inside_string_literals_does_not_trip() {
    let src = "pub fn f() -> String {\n    \"x as u32 .unwrap() panic! Instant::now Ordering::Relaxed\".to_string()\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn trigger_text_inside_raw_strings_and_comments_does_not_trip() {
    let src = "pub fn f() -> &'static str {\n    // mentions as u32 and .unwrap() and panic! in prose\n    /* Instant::now() in a block comment */\n    r#\"SystemTime inside a raw string\"#\n}\n";
    assert_clean(&lint_source(LIB, src));
}

#[test]
fn prose_mentioning_the_marker_syntax_is_not_a_marker() {
    // A doc comment *explaining* the protocol mid-sentence must neither
    // suppress anything nor count as malformed.
    let src = "/// Write `nmpic-lint: allow(L2) — why` to suppress.\npub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    let r = lint_source(LIB, src);
    assert_eq!(rules(&r), [Rule::PanicPath], "the unwrap stays flagged");
    assert_eq!(r.suppressed, 0);
}
