//! The workspace gates on itself: linting the whole repo from the test
//! suite must find zero unsuppressed violations, so `cargo test` fails
//! the moment a new cast/panic/clock read lands without either a fix or
//! an audited allow-marker. This is the same check CI's `invariants`
//! job runs via the CLI.

use std::path::Path;

#[test]
fn workspace_has_zero_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = nmpic_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        report.files > 50,
        "walk looks truncated: only {} files scanned",
        report.files
    );
    assert!(
        report.violations.is_empty(),
        "{} unsuppressed violation(s):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.suppressed > 0,
        "no marker suppressed anything — the allow-marker path looks dead"
    );
}
