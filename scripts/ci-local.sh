#!/usr/bin/env bash
# Reproduces the CI matrix locally so contributors can pre-flight before
# pushing. Mirrors .github/workflows/ci.yml job for job:
#
#   lint        cargo fmt --check + clippy -D warnings + -D deprecated
#               on the bench/tests/examples targets (legacy-API gate),
#               then nmpic-lint (workspace invariant checker: casts,
#               panic paths, unordered floats, unsafe, Relaxed, clocks,
#               unaudited service locks)
#   test        release build + quick-scale test suite (stable, plus the
#               MSRV toolchain when rustup has it installed)
#   bench-smoke scaling_units + scaling_channels + batched_spmv +
#               analytic_validation + service_throughput + service_soak +
#               solver_convergence at NMPIC_QUICK=1, then gate the JSON
#               results on zero rows / NaN values (plus zero iterations /
#               non-convergence for the solver, and lost tickets /
#               unbounded retention / zero p99 for the service)
#   doc         rustdoc with broken intra-doc links as errors
#
# Usage: scripts/ci-local.sh [lint|test|bench|doc]...  (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

MSRV=$(sed -n 's/^rust-version = "\(.*\)"/\1/p' Cargo.toml | head -n1)

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

run_lint() {
    step "lint: rustfmt"
    cargo fmt --all --check
    step "lint: clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
    step "lint: no deprecated API outside the shims"
    RUSTFLAGS="-D deprecated" cargo check -p nmpic-bench --all-targets
    RUSTFLAGS="-D deprecated" cargo check -p nmpic --tests --examples
    step "lint: nmpic-lint workspace invariants"
    cargo run -q -p nmpic-lint --release
}

run_test() {
    step "test: release build (stable)"
    cargo build --release --workspace --all-targets
    step "test: quick-scale suite (stable)"
    NMPIC_QUICK=1 cargo test -q --release --workspace
    # The MSRV leg runs only when the pinned toolchain is available, so
    # the script stays useful on machines without rustup.
    if command -v rustup >/dev/null 2>&1 && rustup toolchain list | grep -q "^$MSRV"; then
        step "test: quick-scale suite (MSRV $MSRV)"
        NMPIC_QUICK=1 cargo "+$MSRV" test -q --release --workspace
    else
        echo "note: MSRV $MSRV toolchain not installed; skipping the MSRV leg"
        echo "      (CI still runs it — install with: rustup toolchain install $MSRV)"
    fi
}

run_bench() {
    step "bench-smoke: scaling_units + scaling_channels + batched_spmv + service_throughput + service_soak + solver_convergence + analytic_validation (NMPIC_QUICK=1)"
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin scaling_units
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin scaling_channels
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin batched_spmv
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin service_throughput
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin service_soak
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin solver_convergence
    NMPIC_QUICK=1 cargo run --release -p nmpic-bench --bin analytic_validation
    step "bench-smoke: gating results"
    ./scripts/check-results.sh results/scaling_units.json results/scaling_channels.json results/batched_spmv.json results/service_throughput.json results/service_soak.json results/solver_convergence.json results/analytic_validation.json
}

run_doc() {
    step "doc: rustdoc -D warnings"
    RUSTDOCFLAGS="-D warnings --cfg docsrs" cargo doc --workspace --no-deps
}

if [ "$#" -eq 0 ]; then
    set -- lint test bench doc
fi
for job in "$@"; do
    case "$job" in
        lint) run_lint ;;
        test) run_test ;;
        bench) run_bench ;;
        doc) run_doc ;;
        *)
            echo "unknown job '$job' (want lint|test|bench|doc)" >&2
            exit 2
            ;;
    esac
done
printf '\n\033[1mall requested CI jobs passed\033[0m\n'
