#!/usr/bin/env bash
# Gate on experiment result files: every JSON result passed as an
# argument must exist, contain at least one row, and contain no NaN /
# infinite values. Used by the CI bench-smoke job and scripts/ci-local.sh.
#
# Usage: scripts/check-results.sh results/scaling_units.json [more.json ...]
set -euo pipefail

if [ "$#" -eq 0 ]; then
    echo "usage: $0 <results.json> [...]" >&2
    exit 2
fi

fail=0
for file in "$@"; do
    bad=0
    if [ ! -s "$file" ]; then
        echo "FAIL: $file is missing or empty" >&2
        fail=1
        continue
    fi
    # Table::to_json emits one `{...}` object per data row; an experiment
    # that produced no rows serializes to a bare `[]`.
    rows=$(grep -c '{' "$file" || true)
    if [ "$rows" -eq 0 ]; then
        echo "FAIL: $file contains zero result rows" >&2
        bad=1
    fi
    # NaN / infinity cannot be JSON numbers, so Table::to_json emits them
    # as strings — their presence means an experiment produced a
    # meaningless bandwidth.
    if grep -qiE '"(nan|-?inf(inity)?)"' "$file"; then
        echo "FAIL: $file contains NaN/infinite values:" >&2
        grep -niE '"(nan|-?inf(inity)?)"' "$file" >&2
        bad=1
    fi
    if [ "$bad" -eq 0 ]; then
        echo "OK: $file ($rows rows, all values finite)"
    else
        fail=1
    fi
done
exit "$fail"
