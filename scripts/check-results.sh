#!/usr/bin/env bash
# Gate on experiment result files: every JSON result passed as an
# argument must exist, contain at least one row, and contain no NaN /
# infinite values. Used by the CI bench-smoke job and scripts/ci-local.sh.
#
# Usage: scripts/check-results.sh results/scaling_units.json [more.json ...]
set -euo pipefail

if [ "$#" -eq 0 ]; then
    echo "usage: $0 <results.json> [...]" >&2
    exit 2
fi

fail=0
for file in "$@"; do
    bad=0
    if [ ! -s "$file" ]; then
        echo "FAIL: $file is missing or empty" >&2
        fail=1
        continue
    fi
    # Table::to_json emits one `{...}` object per data row; an experiment
    # that produced no rows serializes to a bare `[]`.
    rows=$(grep -c '{' "$file" || true)
    if [ "$rows" -eq 0 ]; then
        echo "FAIL: $file contains zero result rows" >&2
        bad=1
    fi
    # NaN / infinity cannot be JSON numbers, so Table::to_json emits them
    # as strings — their presence means an experiment produced a
    # meaningless bandwidth (or, for solver results, a NaN residual).
    if grep -qiE '"(nan|-?inf(inity)?)"' "$file"; then
        echo "FAIL: $file contains NaN/infinite values:" >&2
        grep -niE '"(nan|-?inf(inity)?)"' "$file" >&2
        bad=1
    fi
    # Solver results carry convergence columns; gate on them. A row with
    # zero iterations means the solve never ran an SpMV; a "false" in
    # the converged column means the tolerance was never reached.
    if grep -q '"iters"' "$file"; then
        if grep -qE '"iters": 0[,}]' "$file"; then
            echo "FAIL: $file contains a zero-iteration solve:" >&2
            grep -nE '"iters": 0[,}]' "$file" >&2
            bad=1
        fi
        if grep -qiE '"converged": "?false"?' "$file"; then
            echo "FAIL: $file contains a non-converged solve:" >&2
            grep -niE '"converged": "?false"?' "$file" >&2
            bad=1
        fi
    fi
    # Analytic-validation results carry per-point relative errors of the
    # analytic execution mode vs cycle-accurate. Gate on the row's own
    # verdict columns and, belt-and-braces, on the numeric errors
    # against the pinned tolerance (keep in sync with
    # `nmpic_model::analytic::PINNED_REL_TOL` in
    # crates/model/src/analytic.rs).
    if grep -q '"rel err cycles"' "$file"; then
        rel_tol=0.5
        if grep -qE '"(within tol|values match)": "?false"?' "$file"; then
            echo "FAIL: $file contains out-of-tolerance or value-mismatched points:" >&2
            grep -nE '"(within tol|values match)": "?false"?' "$file" >&2
            bad=1
        fi
        if ! awk -v tol="$rel_tol" '
            {
                while (match($0, /"rel err [^"]*": *[0-9.eE+-]+/)) {
                    s = substr($0, RSTART, RLENGTH)
                    sub(/^.*: */, "", s)
                    if (s + 0 > tol + 0) { print "line " NR ": " s; bad = 1 }
                    $0 = substr($0, RSTART + RLENGTH)
                }
            }
            END { exit bad }' "$file"; then
            echo "FAIL: $file contains relative errors above the pinned tolerance $rel_tol" >&2
            bad=1
        fi
    fi
    # Service results carry tail-latency columns; a zero (or NaN —
    # caught above) p99 means the enqueue->publish latency pipeline
    # never recorded a sample, and a "false" in the verified column
    # means a served result diverged from its serial reference bytes.
    if grep -q '"p99 us"' "$file"; then
        if grep -qE '"p99 us": *0(\.0*)?[,}]' "$file"; then
            echo "FAIL: $file contains a zero p99 latency (no samples recorded):" >&2
            grep -nE '"p99 us": *0(\.0*)?[,}]' "$file" >&2
            bad=1
        fi
        if grep -qiE '"verified": "?false"?' "$file"; then
            echo "FAIL: $file contains unverified (byte-diverged) service results:" >&2
            grep -niE '"verified": "?false"?' "$file" >&2
            bad=1
        fi
    fi
    # Soak results additionally carry ticket-conservation columns: a
    # nonzero "lost" count means a ticket fell between the accounting
    # cracks, a nonzero "failed" means a drain batch died, and a "false"
    # retention verdict means the done-map outgrew its documented bound.
    if grep -q '"lost"' "$file"; then
        if grep -qE '"(lost|failed)": *[1-9]' "$file"; then
            echo "FAIL: $file contains lost or failed tickets:" >&2
            grep -nE '"(lost|failed)": *[1-9]' "$file" >&2
            bad=1
        fi
        if grep -qiE '"retention ok": "?false"?' "$file"; then
            echo "FAIL: $file contains unbounded result retention:" >&2
            grep -niE '"retention ok": "?false"?' "$file" >&2
            bad=1
        fi
    fi
    if [ "$bad" -eq 0 ]; then
        echo "OK: $file ($rows rows, all values finite)"
    else
        fail=1
    fi
done
exit "$fail"
