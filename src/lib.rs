//! # nmpic — Near-Memory Parallel Indexing and Coalescing
//!
//! Facade crate re-exporting the full public API of the workspace. See
//! the README for an overview and `DESIGN.md` for the system inventory.
//!
//! * [`sim`] — cycle-driven simulation kernel
//! * [`mem`] — HBM2 channel model and byte-accurate memory
//! * [`axi`] — AXI4 / AXI-Pack protocol types
//! * [`sparse`] — CSR/SELL formats, generators, golden SpMV
//! * [`core`] — the indirect stream unit with parallel request coalescing
//! * [`system`] — vector processor system models (pack and baseline)
//! * [`model`] — area, storage and efficiency models
//!
//! # Example
//!
//! ```
//! use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
//!
//! let indices: Vec<u32> = (0..256).map(|k| k % 64).collect();
//! let r = run_indirect_stream(&AdapterConfig::mlp(64), &indices, 64,
//!                             &StreamOptions::default());
//! assert!(r.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nmpic_axi as axi;
pub use nmpic_core as core;
pub use nmpic_mem as mem;
pub use nmpic_model as model;
pub use nmpic_sim as sim;
pub use nmpic_sparse as sparse;
pub use nmpic_system as system;
