//! Session-API integration tests: plan-reuse determinism.
//!
//! A prepared [`SpmvPlan`] must behave like a pure function of its input
//! vector: two `run(&x)` calls and one `run_batch(&[x, x])` must produce
//! byte-identical results — to each other and to the golden SpMV — on
//! every backend (`ideal`/`hbm`/`hbm4`/`hbm8`) for all three system
//! kinds. Warm channel, unit and cache state must never leak into the
//! numerics.

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::sparse::{by_name, Csr, Sell};
use nmpic::system::{golden_x, PartitionStrategy, SpmvEngine, SystemKind};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Base,
        SystemKind::Pack(AdapterConfig::mlp(256)),
        SystemKind::Sharded {
            units: 4,
            strategy: PartitionStrategy::ByNnz,
        },
    ]
}

fn matrix() -> Csr {
    by_name("HPCG").expect("suite matrix").build_capped(5_000)
}

fn bits(y: &[f64]) -> Vec<u64> {
    y.iter().map(|v| v.to_bits()).collect()
}

/// The golden result the plan's datapath reproduces bit for bit: the
/// CSR accumulation order for base/sharded, the SELL (slice-major)
/// accumulation order for pack.
fn golden_bits(kind: &SystemKind, csr: &Csr, x: &[f64]) -> Vec<u64> {
    match kind {
        SystemKind::Pack(_) => bits(&Sell::from_csr_default(csr).spmv(x)),
        _ => bits(&csr.spmv(x)),
    }
}

#[test]
fn plan_reuse_is_byte_deterministic_everywhere() {
    let csr = matrix();
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    for backend in backends() {
        for system in systems() {
            let ctx = format!("{} on {}", system, backend.label());
            let engine = SpmvEngine::builder()
                .backend(backend.clone())
                .system(system.clone())
                .build();
            let mut plan = engine.prepare(&csr);
            let first = plan.run(&x);
            let second = plan.run(&x);
            let batch = plan.run_batch(&[x.clone(), x.clone()]);
            assert!(
                first.verified && second.verified && batch.verified,
                "{ctx}: golden verification failed"
            );
            // Warm-state reuse must not change the numerics...
            assert_eq!(first.y_bits(), second.y_bits(), "{ctx}: runs diverged");
            assert_eq!(
                first.y_bits(),
                bits(&batch.ys[0]),
                "{ctx}: batch vector 0 diverged"
            );
            assert_eq!(
                first.y_bits(),
                bits(&batch.ys[1]),
                "{ctx}: batch vector 1 diverged"
            );
            // ...nor the timing: identical inputs, identical reports.
            assert_eq!(first.cycles, second.cycles, "{ctx}: cycle drift");
            assert_eq!(
                first.offchip_bytes, second.offchip_bytes,
                "{ctx}: traffic drift"
            );
            // And the results equal the golden SpMV bit for bit.
            assert_eq!(
                first.y_bits(),
                golden_bits(&system, &csr, &x),
                "{ctx}: diverged from golden SpMV"
            );
        }
    }
}

/// Reusing one plan across *different* vectors matches preparing a fresh
/// plan per vector — the memory-image rewrite of `x` is complete.
#[test]
fn plan_reuse_across_different_vectors_matches_fresh_plans() {
    let csr = matrix();
    let xa: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let xb: Vec<f64> = (0..csr.cols()).map(|i| 2.0 - golden_x(i)).collect();
    for system in systems() {
        let engine = SpmvEngine::builder().system(system.clone()).build();
        let mut warm = engine.prepare(&csr);
        let warm_a = warm.run(&xa);
        let warm_b = warm.run(&xb);
        let fresh_b = engine.prepare(&csr).run(&xb);
        assert!(warm_a.verified && warm_b.verified && fresh_b.verified);
        assert_eq!(
            warm_b.y_bits(),
            fresh_b.y_bits(),
            "{system}: stale vector state leaked into the result"
        );
        assert_ne!(
            warm_a.y_bits(),
            warm_b.y_bits(),
            "{system}: distinct vectors must give distinct results"
        );
    }
}

/// The batched pack path amortizes per-vector runtime against the
/// plan-rebuild baseline on hbm8 — the acceptance property of the
/// session API's `run_batch`.
#[test]
fn pack_batch_amortizes_on_hbm8() {
    let csr = by_name("af_shell10")
        .expect("suite matrix")
        .build_capped(8_000);
    let engine = SpmvEngine::builder()
        .backend(BackendConfig::interleaved(8))
        .system(SystemKind::Pack(AdapterConfig::mlp(256)))
        .batch_capacity(4)
        .build();
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let rebuild = engine.prepare(&csr).run(&x);
    let batch = engine.prepare(&csr).run_batch(&vec![x.clone(); 4]);
    assert!(rebuild.verified && batch.verified);
    assert!(
        batch.cycles_per_vector() < rebuild.cycles_per_vector(),
        "B=4 batch must beat the plan-rebuild path: {:.0} vs {:.0} cycles/vector",
        batch.cycles_per_vector(),
        rebuild.cycles_per_vector()
    );
}
