//! Property-based tests over the core invariants: format equivalence,
//! file-format roundtrips, and adapter gather correctness on arbitrary
//! index streams.

use proptest::prelude::*;

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::sparse::{read_matrix_market, write_matrix_market, Coo, Csr, Sell};

/// Strategy: a small random sparse matrix as (rows, cols, entries).
fn arb_matrix() -> impl Strategy<Value = Csr> {
    (2usize..40, 2usize..40)
        .prop_flat_map(|(rows, cols)| {
            let entry = (0..rows as u32, 0..cols as u32, -100i32..100);
            (
                Just(rows),
                Just(cols),
                proptest::collection::vec(entry, 0..120),
            )
        })
        .prop_map(|(rows, cols, entries)| {
            let mut coo = Coo::new(rows, cols);
            for (r, c, v) in entries {
                coo.push(r, c, v as f64 * 0.25);
            }
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SELL SpMV equals CSR SpMV for every matrix and slice height.
    #[test]
    fn sell_equals_csr_spmv(csr in arb_matrix(), height in 1usize..40) {
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.5) - 3.0).collect();
        let sell = Sell::from_csr(&csr, height);
        prop_assert_eq!(sell.spmv(&x), csr.spmv(&x));
        prop_assert_eq!(sell.nnz(), csr.nnz());
        prop_assert!(sell.padded_len() >= csr.nnz());
    }

    /// MatrixMarket write → read is the identity on CSR.
    #[test]
    fn matrix_market_roundtrip(csr in arb_matrix()) {
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &csr).expect("write");
        let back = read_matrix_market(buf.as_slice()).expect("read");
        prop_assert_eq!(back, csr);
    }

    /// COO → CSR sums duplicates: total matrix action is preserved.
    #[test]
    fn coo_duplicates_sum(
        rows in 2usize..16,
        entries in proptest::collection::vec((0u32..16, 0u32..16, -50i32..50), 1..60),
    ) {
        let mut coo = Coo::new(rows.max(16), 16);
        let mut dense = vec![0.0f64; rows.max(16) * 16];
        for (r, c, v) in &entries {
            let v = *v as f64;
            coo.push(*r, *c, v);
            dense[(*r as usize) * 16 + *c as usize] += v;
        }
        let csr = coo.to_csr();
        let x = vec![1.0; 16];
        let y = csr.spmv(&x);
        for (r, got) in y.iter().enumerate() {
            let want: f64 = dense[r * 16..(r + 1) * 16].iter().sum();
            prop_assert!((got - want).abs() < 1e-9);
        }
    }
}

proptest! {
    // Cycle-accurate runs are slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The adapter delivers exactly the golden gather for arbitrary index
    /// streams, for every variant family.
    #[test]
    fn adapter_gathers_any_stream(
        indices in proptest::collection::vec(0u32..500, 1..400),
        which in 0usize..4,
    ) {
        let cfg = match which {
            0 => AdapterConfig::mlp_nc(),
            1 => AdapterConfig::mlp(8),
            2 => AdapterConfig::mlp(64),
            _ => AdapterConfig::seq(32),
        };
        let r = run_indirect_stream(&cfg, &indices, 500, &StreamOptions::default());
        prop_assert!(r.verified, "{} failed on {} indices", cfg.variant_name(), indices.len());
        prop_assert_eq!(r.elements, indices.len() as u64);
    }
}

mod scatter_props {
    use super::*;
    use nmpic::axi::{ElemSize, Packer};
    use nmpic::core::{ScatterRequest, ScatterUnit};
    use nmpic::mem::{ChannelPort, HbmChannel, HbmConfig, Memory};

    /// Reference scatter: last writer wins, everything else untouched.
    fn golden_scatter(indices: &[u32], values: &[u64], dst_len: usize) -> Vec<u64> {
        let mut out: Vec<u64> = (0..dst_len as u64).map(|i| i * 11).collect();
        for (k, &idx) in indices.iter().enumerate() {
            out[idx as usize] = values[k];
        }
        out
    }

    fn run_scatter(indices: &[u32], values: &[u64], dst_len: usize) -> Vec<u64> {
        let size = (4 * indices.len() + 8 * dst_len + 4096)
            .next_multiple_of(64)
            .next_power_of_two();
        let mut mem = Memory::new(size);
        let idx_base = mem.alloc_array(indices.len() as u64, 4);
        let dst = mem.alloc_array(dst_len as u64, 8);
        mem.write_u32_slice(idx_base, indices);
        for i in 0..dst_len as u64 {
            mem.write_u64(dst + 8 * i, i * 11);
        }
        let mut chan = HbmChannel::new(HbmConfig::default(), mem);
        let mut unit = ScatterUnit::new(nmpic::core::AdapterConfig::mlp(64));
        unit.begin(ScatterRequest {
            idx_base,
            idx_size: ElemSize::B4,
            count: indices.len() as u64,
            elem_base: dst,
            elem_size: ElemSize::B8,
        })
        .expect("fresh unit");
        let mut packer = Packer::new(ElemSize::B8);
        let mut next = 0usize;
        let mut staged = None;
        let mut now = 0u64;
        while !unit.is_done(&chan) {
            if staged.is_none() {
                while next < values.len() && packer.pending() < 8 {
                    packer.push(values[next]);
                    next += 1;
                }
                staged = packer.pop_beat().or_else(|| {
                    if next == values.len() {
                        packer.flush()
                    } else {
                        None
                    }
                });
            }
            if let Some(beat) = staged.take() {
                if !unit.push_beat(&beat) {
                    staged = Some(beat);
                }
            }
            unit.tick(now, &mut chan);
            chan.tick(now);
            now += 1;
            assert!(now < 200_000 + indices.len() as u64 * 300, "deadlock");
        }
        (0..dst_len as u64)
            .map(|i| chan.memory().read_u64(dst + 8 * i))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Scatter through the unit equals the golden last-writer-wins
        /// semantics for arbitrary index/value streams (with duplicates).
        #[test]
        fn scatter_matches_golden(
            pairs in proptest::collection::vec((0u32..200, 0u64..u64::MAX), 1..300),
        ) {
            let indices: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let values: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let got = run_scatter(&indices, &values, 200);
            let want = golden_scatter(&indices, &values, 200);
            prop_assert_eq!(got, want);
        }
    }
}
