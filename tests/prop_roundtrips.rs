//! Property-style tests over the core invariants: format equivalence,
//! file-format roundtrips, and adapter gather/scatter correctness on
//! arbitrary index streams.
//!
//! These are hand-rolled property tests driven by the deterministic
//! [`SimRng`] generator (the workspace deliberately has no external
//! dependencies, so proptest is not available). Each property runs a
//! fixed number of seeded cases; failures print the seed so a case can be
//! replayed exactly.

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::sim::SimRng;
use nmpic::sparse::{read_matrix_market, write_matrix_market, Coo, Csr, Sell};

/// A small random sparse matrix with `0..120` entries.
fn arb_matrix(rng: &mut SimRng) -> Csr {
    let rows = rng.gen_u64(2, 40) as usize;
    let cols = rng.gen_u64(2, 40) as usize;
    let n = rng.gen_u64(0, 120) as usize;
    let mut coo = Coo::new(rows, cols);
    for _ in 0..n {
        let r = rng.gen_u64(0, rows as u64) as u32;
        let c = rng.gen_u64(0, cols as u64) as u32;
        let v = rng.gen_u64(0, 200) as i64 - 100;
        coo.push(r, c, v as f64 * 0.25);
    }
    coo.to_csr()
}

/// SELL SpMV equals CSR SpMV for every matrix and slice height.
#[test]
fn sell_equals_csr_spmv() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(seed + 1);
        let csr = arb_matrix(&mut rng);
        let height = rng.gen_u64(1, 40) as usize;
        let x: Vec<f64> = (0..csr.cols()).map(|i| (i as f64 * 0.5) - 3.0).collect();
        let sell = Sell::from_csr(&csr, height);
        assert_eq!(sell.spmv(&x), csr.spmv(&x), "seed {seed}, height {height}");
        assert_eq!(sell.nnz(), csr.nnz(), "seed {seed}");
        assert!(sell.padded_len() >= csr.nnz(), "seed {seed}");
    }
}

/// MatrixMarket write → read is the identity on CSR.
#[test]
fn matrix_market_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0x1000 + seed);
        let csr = arb_matrix(&mut rng);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &csr).expect("write");
        let back = read_matrix_market(buf.as_slice()).expect("read");
        assert_eq!(back, csr, "seed {seed}");
    }
}

/// COO → CSR sums duplicates: total matrix action is preserved.
#[test]
fn coo_duplicates_sum() {
    for seed in 0..64u64 {
        let mut rng = SimRng::new(0x2000 + seed);
        let n = rng.gen_u64(1, 60) as usize;
        let mut coo = Coo::new(16, 16);
        let mut dense = vec![0.0f64; 16 * 16];
        for _ in 0..n {
            let r = rng.gen_u64(0, 16) as u32;
            let c = rng.gen_u64(0, 16) as u32;
            let v = rng.gen_u64(0, 100) as i64 - 50;
            coo.push(r, c, v as f64);
            dense[(r as usize) * 16 + c as usize] += v as f64;
        }
        let csr = coo.to_csr();
        let x = vec![1.0; 16];
        let y = csr.spmv(&x);
        for (r, got) in y.iter().enumerate() {
            let want: f64 = dense[r * 16..(r + 1) * 16].iter().sum();
            assert!((got - want).abs() < 1e-9, "seed {seed}, row {r}");
        }
    }
}

/// The adapter delivers exactly the golden gather for arbitrary index
/// streams, for every variant family.
#[test]
fn adapter_gathers_any_stream() {
    for seed in 0..12u64 {
        let mut rng = SimRng::new(0x3000 + seed);
        let n = rng.gen_u64(1, 400) as usize;
        let indices: Vec<u32> = (0..n).map(|_| rng.gen_u64(0, 500) as u32).collect();
        let cfg = match seed % 4 {
            0 => AdapterConfig::mlp_nc(),
            1 => AdapterConfig::mlp(8),
            2 => AdapterConfig::mlp(64),
            _ => AdapterConfig::seq(32),
        };
        let r = run_indirect_stream(&cfg, &indices, 500, &StreamOptions::default());
        assert!(
            r.verified,
            "{} failed on {} indices (seed {seed})",
            cfg.variant_name(),
            indices.len()
        );
        assert_eq!(r.elements, indices.len() as u64, "seed {seed}");
    }
}

mod scatter_props {
    use nmpic::axi::{ElemSize, Packer};
    use nmpic::core::{AdapterConfig, ScatterRequest, ScatterUnit};
    use nmpic::mem::{ChannelPort, HbmChannel, HbmConfig, Memory};
    use nmpic::sim::SimRng;

    /// Reference scatter: last writer wins, everything else untouched.
    fn golden_scatter(indices: &[u32], values: &[u64], dst_len: usize) -> Vec<u64> {
        let mut out: Vec<u64> = (0..dst_len as u64).map(|i| i * 11).collect();
        for (k, &idx) in indices.iter().enumerate() {
            out[idx as usize] = values[k];
        }
        out
    }

    fn run_scatter(indices: &[u32], values: &[u64], dst_len: usize) -> Vec<u64> {
        let size = (4 * indices.len() + 8 * dst_len + 4096)
            .next_multiple_of(64)
            .next_power_of_two();
        let mut mem = Memory::new(size);
        let idx_base = mem.alloc_array(indices.len() as u64, 4);
        let dst = mem.alloc_array(dst_len as u64, 8);
        mem.write_u32_slice(idx_base, indices);
        for i in 0..dst_len as u64 {
            mem.write_u64(dst + 8 * i, i * 11);
        }
        let mut chan = HbmChannel::new(HbmConfig::default(), mem);
        let mut unit = ScatterUnit::new(AdapterConfig::mlp(64));
        unit.begin(ScatterRequest {
            idx_base,
            idx_size: ElemSize::B4,
            count: indices.len() as u64,
            elem_base: dst,
            elem_size: ElemSize::B8,
        })
        .expect("fresh unit");
        let mut packer = Packer::new(ElemSize::B8);
        let mut next = 0usize;
        let mut staged = None;
        let mut now = 0u64;
        while !unit.is_done(&chan) {
            if staged.is_none() {
                while next < values.len() && packer.pending() < 8 {
                    packer.push(values[next]);
                    next += 1;
                }
                staged = packer.pop_beat().or_else(|| {
                    if next == values.len() {
                        packer.flush()
                    } else {
                        None
                    }
                });
            }
            if let Some(beat) = staged.take() {
                if !unit.push_beat(&beat) {
                    staged = Some(beat);
                }
            }
            unit.tick(now, &mut chan);
            chan.tick(now);
            now += 1;
            assert!(now < 200_000 + indices.len() as u64 * 300, "deadlock");
        }
        (0..dst_len as u64)
            .map(|i| chan.memory().read_u64(dst + 8 * i))
            .collect()
    }

    /// Scatter through the unit equals the golden last-writer-wins
    /// semantics for arbitrary index/value streams (with duplicates).
    #[test]
    fn scatter_matches_golden() {
        for seed in 0..10u64 {
            let mut rng = SimRng::new(0x4000 + seed);
            let n = rng.gen_u64(1, 300) as usize;
            let indices: Vec<u32> = (0..n).map(|_| rng.gen_u64(0, 200) as u32).collect();
            let values: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let got = run_scatter(&indices, &values, 200);
            let want = golden_scatter(&indices, &values, 200);
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
