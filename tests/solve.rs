//! Solver-workload acceptance tests (ISSUE 5):
//!
//! 1. CG on a generated SPD matrix converges to `‖r‖₂ ≤ 1e-10` with a
//!    **bitwise-identical iterate trajectory** across every memory
//!    backend (ideal/hbm/hbm4/hbm8) and every system kind
//!    (base/pack/sharded) — the solver's math is a pure function of the
//!    SpMV result bytes, and every datapath reproduces the golden
//!    accumulation bytes;
//! 2. [`SpmvPlan::run_into`] results are byte-identical to
//!    [`SpmvPlan::run`] on the same plan, while allocating into the
//!    caller's buffer and (on the baseline) keeping matrix lines warm
//!    across calls;
//! 3. sharded solves are invariant to the worker count.

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::sparse::gen::spd;
use nmpic::sparse::Csr;
use nmpic::system::{
    golden_x, PartitionStrategy, SolveOptions, Solver, SpmvEngine, SpmvPlan, SystemKind,
};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Base,
        SystemKind::Pack(AdapterConfig::mlp(64)),
        SystemKind::Sharded {
            units: 2,
            strategy: PartitionStrategy::ByNnz,
        },
    ]
}

fn plan_for(system: &SystemKind, backend: &BackendConfig, a: &Csr) -> SpmvPlan {
    SpmvEngine::builder()
        .backend(backend.clone())
        .system(system.clone())
        .build()
        .prepare(a)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The headline acceptance: one SPD system, twelve (backend × system)
/// plans, one bit-exact CG trajectory.
#[test]
fn cg_trajectory_is_bitwise_identical_across_backends_and_systems() {
    let a = spd(96, 6, 8, 42);
    assert!(a.is_symmetric());
    let b: Vec<f64> = (0..a.rows()).map(golden_x).collect();
    let mut reference: Option<(Vec<u64>, Vec<u64>, usize)> = None;
    for system in systems() {
        for backend in backends() {
            let mut plan = plan_for(&system, &backend, &a);
            let r = Solver::cg(&mut plan, &b, &SolveOptions::default());
            assert!(
                r.converged && r.residual <= 1e-10,
                "{system}/{}: stalled at {} after {} iterations",
                backend.label(),
                r.residual,
                r.iterations
            );
            assert!(r.iterations > 0);
            let got = (bits(&r.x), bits(&r.residuals), r.iterations);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(
                        got.2,
                        want.2,
                        "{system}/{}: iteration count diverged",
                        backend.label()
                    );
                    assert_eq!(
                        got.1,
                        want.1,
                        "{system}/{}: residual trajectory diverged",
                        backend.label()
                    );
                    assert_eq!(
                        got.0,
                        want.0,
                        "{system}/{}: solution bytes diverged",
                        backend.label()
                    );
                }
            }
        }
    }
}

/// `run_into` must hand back exactly the bytes `run` would, for every
/// system kind and backend, on the same warm plan — and repeated calls
/// (the solver's reuse pattern) must stay byte-stable.
#[test]
fn run_into_is_byte_identical_to_run() {
    let a = spd(96, 6, 8, 7);
    let x: Vec<f64> = (0..a.cols()).map(golden_x).collect();
    for system in systems() {
        for backend in backends() {
            let label = format!("{system}/{}", backend.label());
            let mut plan = plan_for(&system, &backend, &a);
            let want = plan.run(&x);
            assert!(want.verified, "{label}");
            let mut y = vec![0.0f64; a.rows()];
            let iter = plan.run_into(&x, &mut y);
            assert_eq!(bits(&y), want.y_bits(), "{label}: run_into diverged");
            assert!(iter.cycles > 0 && iter.offchip_bytes > 0, "{label}");
            assert!(iter.indir_cycles <= iter.cycles, "{label}");
            // The buffer is overwritten, not accumulated into: a dirty
            // buffer yields the same bytes.
            y.fill(f64::NAN);
            plan.run_into(&x, &mut y);
            assert_eq!(bits(&y), want.y_bits(), "{label}: dirty-buffer reuse");
            // And a subsequent `run` on the same plan still agrees.
            let again = plan.run(&x);
            assert_eq!(again.y_bits(), want.y_bits(), "{label}: plan reuse");
        }
    }
}

/// The baseline's `run_into` keeps the LLC's matrix lines warm across a
/// solver's iterations: after the first (cold) call, repeated calls
/// move strictly less off-chip data and settle to a steady state.
#[test]
fn base_run_into_amortizes_matrix_traffic_across_iterations() {
    let a = spd(256, 8, 16, 13);
    let x: Vec<f64> = (0..a.cols()).map(golden_x).collect();
    let engine = SpmvEngine::builder().system(SystemKind::Base).build();
    let mut plan = engine.prepare(&a);
    let mut y = vec![0.0f64; a.rows()];
    let cold = plan.run_into(&x, &mut y);
    let warm1 = plan.run_into(&x, &mut y);
    let warm2 = plan.run_into(&x, &mut y);
    assert!(
        warm1.offchip_bytes < cold.offchip_bytes,
        "warm iteration must skip resident matrix lines: {} vs {}",
        warm1.offchip_bytes,
        cold.offchip_bytes
    );
    assert_eq!(
        warm1.offchip_bytes, warm2.offchip_bytes,
        "steady-state traffic must be deterministic"
    );
    assert_eq!(warm1.cycles, warm2.cycles, "steady-state cycles too");
}

/// Worker-count invariance carries over to whole solves: the sharded
/// engine's CG trajectory is bit-identical at any worker count.
#[test]
fn sharded_solves_are_worker_count_invariant() {
    let a = spd(128, 6, 10, 21);
    let b: Vec<f64> = (0..a.rows()).map(golden_x).collect();
    let mut reference: Option<(Vec<u64>, Vec<u64>, u64)> = None;
    for workers in [1usize, 2, 4] {
        let engine = SpmvEngine::builder()
            .backend(BackendConfig::interleaved(4))
            .system(SystemKind::Sharded {
                units: 4,
                strategy: PartitionStrategy::ByNnz,
            })
            .shard_workers(workers)
            .build();
        let mut plan = engine.prepare(&a);
        let r = Solver::cg(&mut plan, &b, &SolveOptions::default());
        assert!(r.converged, "{workers} workers");
        let got = (bits(&r.x), bits(&r.residuals), r.spmv_cycles);
        match &reference {
            None => reference = Some(got),
            Some(want) => {
                assert_eq!(&got.0, &want.0, "{workers} workers: solution diverged");
                assert_eq!(&got.1, &want.1, "{workers} workers: residuals diverged");
                assert_eq!(
                    got.2, want.2,
                    "{workers} workers: simulated cycles diverged"
                );
            }
        }
    }
}

/// Power iteration converges on the same plan machinery and its
/// eigenpair verifies against the golden SpMV.
#[test]
fn power_iteration_agrees_across_systems() {
    let a = spd(96, 6, 8, 33);
    let opts = SolveOptions {
        tol: 1e-8,
        max_iters: 5000,
        ..SolveOptions::default()
    };
    let mut reference: Option<Vec<u64>> = None;
    for system in systems() {
        let mut plan = plan_for(&system, &BackendConfig::hbm(), &a);
        let r = Solver::power_iteration(&mut plan, &opts);
        assert!(r.converged, "{system}: stalled at {}", r.residual);
        let lambda = r.eigenvalue.expect("estimated");
        let av = a.spmv(&r.x);
        for (got, want) in av.iter().zip(r.x.iter().map(|v| lambda * v)) {
            assert!((got - want).abs() < 1e-6, "{system}: {got} vs {want}");
        }
        match &reference {
            None => reference = Some(bits(&r.x)),
            Some(want) => assert_eq!(&bits(&r.x), want, "{system}: eigenvector diverged"),
        }
    }
}
