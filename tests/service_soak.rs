//! Soak-style stress tests for `SpmvService`: several producer threads
//! pushing a sustained mix of SpMV and iterative-solve requests across
//! many tenant matrices against the live background drain, with
//! windowed redemption, deliberate ticket abandonment, and quota
//! backpressure — asserting **exact ticket conservation** (every
//! accepted ticket is eventually completed and then taken, evicted, or
//! retained; nothing is lost or double-counted) and byte-identity of
//! every redeemed result against serial single-tenant execution.
//!
//! The cycle-accurate simulator is not the subject here, so the tests
//! run on the analytic execution mode (bit-identical result vectors,
//! orders of magnitude faster).

use std::collections::VecDeque;

use nmpic::sparse::gen::{banded_fem, spd};
use nmpic::sparse::Csr;
use nmpic::system::{
    golden_x, CompletedSolve, ExecMode, MatrixKey, ServiceError, SolveOptions, SolveRequest,
    Solver, SpmvEngine, SpmvService, SystemKind, Ticket, RESULT_RETENTION_FACTOR,
};

const PRODUCERS: usize = 4;
const OPS_PER_PRODUCER: usize = 160;
const TENANTS: usize = 6;
const X_POOL: usize = 4;
const WINDOW: usize = 16;
const ABANDON_EVERY: usize = 13;

/// splitmix64 — deterministic per-(producer, op) traffic shaping.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Spmv { tenant: usize, slot: usize },
    Cg { tenant: usize },
    Power { tenant: usize },
}

/// Every 8th request is a solve on an SPD (even-index) tenant,
/// alternating CG and power iteration by hash; everything else is an
/// SpMV on a hash-picked tenant with a hash-picked pooled vector.
fn op_for(producer: usize, i: usize) -> Op {
    let h = mix(((producer as u64) << 32) ^ i as u64);
    if i.is_multiple_of(8) {
        let tenant = 2 * (h % (TENANTS as u64 / 2)) as usize;
        if (h >> 8) & 1 == 0 {
            Op::Cg { tenant }
        } else {
            Op::Power { tenant }
        }
    } else {
        Op::Spmv {
            tenant: (h % TENANTS as u64) as usize,
            slot: ((h >> 16) % X_POOL as u64) as usize,
        }
    }
}

fn engine() -> SpmvEngine {
    SpmvEngine::builder()
        .system(SystemKind::Base)
        .exec_mode(ExecMode::Analytic)
        .build()
}

/// Even tenants are SPD (solve-capable), odd tenants are asymmetric FEM
/// bands; sizes differ per tenant so vector-length bugs cannot hide.
fn tenant_matrix(t: usize) -> Csr {
    if t.is_multiple_of(2) {
        spd(96 + 8 * t, 5, 8, t as u64)
    } else {
        banded_fem(104 + 8 * t, 5, 10, t as u64)
    }
}

fn pooled_x(csr: &Csr, tenant: usize, slot: usize) -> Vec<f64> {
    (0..csr.cols())
        .map(|i| golden_x(i + 353 * slot + 7919 * tenant))
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn check_solve(done: &CompletedSolve, want: &[u64]) {
    // Convergence is the solver's business; the service contract under
    // test is that the served iterate is byte-identical to serial.
    assert_eq!(bits(&done.report.x), want, "solve bytes diverged");
}

#[test]
fn soak_conserves_every_ticket_across_producers_and_tenants() {
    let mats: Vec<Csr> = (0..TENANTS).map(tenant_matrix).collect();
    let xs: Vec<Vec<Vec<f64>>> = (0..TENANTS)
        .map(|t| (0..X_POOL).map(|s| pooled_x(&mats[t], t, s)).collect())
        .collect();
    let bvecs: Vec<Vec<f64>> = (0..TENANTS)
        .map(|t| pooled_x(&mats[t], t, X_POOL))
        .collect();
    let opts = SolveOptions::default();

    // Serial single-tenant references, computed on an identical engine.
    let eng = engine();
    let mut spmv_ref: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut cg_ref: Vec<Option<Vec<u64>>> = Vec::new();
    let mut power_ref: Vec<Option<Vec<u64>>> = Vec::new();
    for t in 0..TENANTS {
        let mut plan = eng.prepare(&mats[t]);
        spmv_ref.push((0..X_POOL).map(|s| plan.run(&xs[t][s]).y_bits()).collect());
        if t % 2 == 0 {
            cg_ref.push(Some(bits(&Solver::cg(&mut plan, &bvecs[t], &opts).x)));
            power_ref.push(Some(bits(&Solver::power_iteration(&mut plan, &opts).x)));
        } else {
            cg_ref.push(None);
            power_ref.push(None);
        }
    }

    let svc = SpmvService::builder(engine())
        .drain_workers(2)
        .lane_quota(32)
        .build();
    let keys: Vec<MatrixKey> = mats.iter().map(|m| svc.prepare(m)).collect();

    let mut abandoned_total = 0usize;
    let mut redeemed_total = 0usize;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let svc = &svc;
            let keys = &keys;
            let xs = &xs;
            let bvecs = &bvecs;
            let spmv_ref = &spmv_ref;
            let cg_ref = &cg_ref;
            let power_ref = &power_ref;
            let opts = &opts;
            handles.push(s.spawn(move || {
                let redeem = |op: Op, ticket: Ticket| match op {
                    Op::Spmv { tenant, slot } => {
                        let done = svc.wait(ticket).expect("spmv publishes");
                        assert!(done.verified);
                        assert_eq!(bits(&done.y), spmv_ref[tenant][slot], "spmv bytes diverged");
                    }
                    Op::Cg { tenant } => {
                        let done = svc.wait_solve(ticket).expect("cg publishes");
                        check_solve(&done, cg_ref[tenant].as_ref().expect("SPD tenant"));
                    }
                    Op::Power { tenant } => {
                        let done = svc.wait_solve(ticket).expect("power publishes");
                        check_solve(&done, power_ref[tenant].as_ref().expect("SPD tenant"));
                    }
                };
                let mut window: VecDeque<(Op, Ticket)> = VecDeque::new();
                let mut abandoned = 0usize;
                let mut redeemed = 0usize;
                for i in 0..OPS_PER_PRODUCER {
                    let op = op_for(p, i);
                    // Quota backpressure: on rejection, free capacity by
                    // redeeming the oldest windowed ticket, then retry.
                    let ticket = loop {
                        let attempt = match op {
                            Op::Spmv { tenant, slot } => {
                                svc.submit(keys[tenant], xs[tenant][slot].clone())
                            }
                            Op::Cg { tenant } => svc.submit_solve(
                                keys[tenant],
                                SolveRequest::Cg {
                                    b: bvecs[tenant].clone(),
                                },
                                opts.clone(),
                            ),
                            Op::Power { tenant } => svc.submit_solve(
                                keys[tenant],
                                SolveRequest::PowerIteration,
                                opts.clone(),
                            ),
                        };
                        match attempt {
                            Ok(t) => break t,
                            Err(ServiceError::TenantQuotaExceeded { .. }) => {
                                match window.pop_front() {
                                    Some((op, t)) => {
                                        redeem(op, t);
                                        redeemed += 1;
                                    }
                                    None => std::thread::yield_now(),
                                }
                            }
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    };
                    if i % ABANDON_EVERY == 5 {
                        // Deliberately never redeemed: must end up
                        // retained (or evicted), never lost.
                        abandoned += 1;
                    } else {
                        window.push_back((op, ticket));
                        if window.len() > WINDOW {
                            let (op, t) = window.pop_front().expect("nonempty");
                            redeem(op, t);
                            redeemed += 1;
                        }
                    }
                }
                for (op, t) in window {
                    redeem(op, t);
                    redeemed += 1;
                }
                (abandoned, redeemed)
            }));
        }
        for h in handles {
            let (a, r) = h.join().expect("producer");
            abandoned_total += a;
            redeemed_total += r;
        }
    });
    svc.quiesce();

    let total = (PRODUCERS * OPS_PER_PRODUCER) as u64;
    let stats = svc.stats();
    assert_eq!(stats.submitted, total, "every op was eventually accepted");
    assert_eq!(redeemed_total as u64 + abandoned_total as u64, total);
    assert!(stats.solves_completed > 0, "the mix includes solves");
    assert_eq!(stats.failed, 0);
    // Conservation invariant 1: every accepted ticket reached a
    // terminal state.
    assert_eq!(
        stats.completed + stats.solves_completed + stats.failed,
        stats.submitted,
        "tickets lost between submission and terminal state"
    );
    // Conservation invariant 2: every terminal ticket is accounted for
    // exactly once as taken, evicted, or still retained.
    assert_eq!(
        stats.taken + stats.evicted + svc.retained() as u64,
        stats.submitted,
        "terminal tickets lost between publication and redemption"
    );
    assert_eq!(stats.taken, redeemed_total as u64);
    // Bounded memory: retention never exceeds the documented cap.
    let retention_bound = svc.lane_count() * RESULT_RETENTION_FACTOR * svc.lane_quota();
    assert!(
        svc.retained() <= retention_bound,
        "retained {} exceeds bound {retention_bound}",
        svc.retained()
    );
    assert_eq!(svc.pending(), 0);
    assert_eq!(svc.quarantined_lanes(), 0);
    let lat = svc.latency();
    assert_eq!(lat.count, total, "one latency sample per completed request");
    assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.p999_ns);
}

/// A drain worker panicking mid-batch (chaos hook) quarantines exactly
/// the panicking lane while other tenants keep being served by the same
/// background worker — and ticket conservation still holds, with the
/// poisoned lane's tickets reported as failed rather than lost.
#[test]
fn drain_panic_under_load_quarantines_one_lane_and_conserves_tickets() {
    const REQS: usize = 6;
    let svc = SpmvService::builder(engine()).drain_workers(1).build();
    let a = spd(64, 4, 6, 1);
    let ka = svc.prepare(&a);
    // Find a second tenant on a different submission lane.
    let (b, kb) = (2..64)
        .map(|seed| {
            let m = banded_fem(72, 4, 8, seed);
            let k = svc.prepare(&m);
            (m, k)
        })
        .find(|(_, k)| svc.lane_of(*k) != svc.lane_of(ka))
        .expect("some seed lands on another lane");
    let xa: Vec<f64> = (0..a.cols()).map(golden_x).collect();
    let xb: Vec<f64> = (0..b.cols()).map(golden_x).collect();
    let want_b = engine().prepare(&b).run(&xb).y_bits();

    // Arm the chaos hook before the first submission so the very first
    // drained group for tenant A panics the worker mid-batch.
    svc.inject_batch_panic(ka);
    let mut a_accepted = Vec::new();
    let mut a_rejected = 0usize;
    let mut b_tickets = Vec::new();
    for _ in 0..REQS {
        // The worker may quarantine A's lane while we are still
        // submitting; later submissions then bounce eagerly.
        match svc.submit(ka, xa.clone()) {
            Ok(t) => a_accepted.push(t),
            Err(ServiceError::LaneQuarantined { key }) => {
                assert_eq!(key, ka);
                a_rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        b_tickets.push(svc.submit(kb, xb.clone()).expect("healthy lane accepts"));
    }
    assert_eq!(a_accepted.len() + a_rejected, REQS);
    svc.quiesce();

    assert_eq!(svc.quarantined_lanes(), 1, "only the panicking lane");
    for t in a_accepted.iter() {
        assert_eq!(
            svc.wait(*t).unwrap_err(),
            ServiceError::ExecutionFailed { key: ka },
            "accepted tickets on the quarantined lane fail, not hang"
        );
    }
    for t in b_tickets {
        let done = svc.wait(t).expect("other lanes keep serving");
        assert!(done.verified);
        assert_eq!(
            done.y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            want_b
        );
    }
    // The quarantine is sticky for new traffic on that lane only.
    assert_eq!(
        svc.submit(ka, xa.clone()).unwrap_err(),
        ServiceError::LaneQuarantined { key: ka }
    );
    assert!(svc.submit(kb, xb.clone()).is_ok());
    svc.quiesce();

    let stats = svc.stats();
    assert_eq!(stats.failed, a_accepted.len() as u64);
    assert_eq!(
        stats.completed + stats.solves_completed + stats.failed,
        stats.submitted,
        "conservation holds through the quarantine"
    );
    assert_eq!(
        stats.taken + stats.evicted + svc.retained() as u64,
        stats.submitted
    );
}
