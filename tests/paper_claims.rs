//! Headline-claim regression tests: the paper's quantitative *shape*
//! must hold at test scale (who wins, by roughly what factor). Exact
//! magnitudes live in EXPERIMENTS.md at full experiment scale.

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::model::{a64fx, adapter_area, sx_aurora, this_work};
use nmpic::sparse::{by_name, Sell};
use nmpic::system::{golden_x, RunReport, SpmvEngine, SystemKind};

fn sell_for(name: &str, cap: u64) -> (nmpic::sparse::Csr, Sell) {
    let spec = by_name(name).expect("suite matrix");
    let csr = spec.build_capped(cap);
    let sell = Sell::from_csr_default(&csr);
    (csr, sell)
}

fn run_base(csr: &nmpic::sparse::Csr) -> RunReport {
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    SpmvEngine::builder()
        .system(SystemKind::Base)
        .build()
        .prepare(csr)
        .run(&x)
}

fn run_pack(sell: &Sell, adapter: AdapterConfig) -> RunReport {
    let x: Vec<f64> = (0..sell.cols()).map(golden_x).collect();
    SpmvEngine::builder()
        .system(SystemKind::Pack(adapter))
        .build()
        .prepare_sell(sell)
        .run(&x)
}

/// Fig. 3 claim: the 256-window parallel coalescer multiplies effective
/// indirect bandwidth by several-fold over MLPnc on local matrices
/// (paper: 8.4x average at full scale).
#[test]
fn coalescer_multiplies_indirect_bandwidth() {
    let (csr, sell) = sell_for("af_shell10", 40_000);
    let opts = StreamOptions::default();
    let nc = run_indirect_stream(&AdapterConfig::mlp_nc(), sell.col_idx(), csr.cols(), &opts);
    let c = run_indirect_stream(&AdapterConfig::mlp(256), sell.col_idx(), csr.cols(), &opts);
    let gain = c.indir_gbps / nc.indir_gbps;
    assert!(gain > 5.0, "MLP256/MLPnc = {gain:.1}, paper ~8x");
}

/// Fig. 3 claim: the sequential coalescer is capped at one element per
/// cycle (8 GB/s) and loses clearly to the parallel one.
#[test]
fn sequential_variant_is_port_limited() {
    let (csr, sell) = sell_for("af_shell10", 40_000);
    let opts = StreamOptions::default();
    let seq = run_indirect_stream(&AdapterConfig::seq(256), sell.col_idx(), csr.cols(), &opts);
    let par = run_indirect_stream(&AdapterConfig::mlp(256), sell.col_idx(), csr.cols(), &opts);
    assert!(seq.indir_gbps <= 8.0 + 1e-6, "{:.2}", seq.indir_gbps);
    assert!(
        par.indir_gbps / seq.indir_gbps > 2.0,
        "paper reports ~3x: got {:.2}",
        par.indir_gbps / seq.indir_gbps
    );
}

/// Fig. 3 claim: some streams exceed the 32 GB/s channel peak thanks to
/// cache-less data reuse inside the coalescer.
#[test]
fn effective_bandwidth_can_exceed_channel_peak() {
    let (csr, sell) = sell_for("af_shell10", 60_000);
    let opts = StreamOptions::default();
    let r = run_indirect_stream(&AdapterConfig::mlp(256), sell.col_idx(), csr.cols(), &opts);
    assert!(
        r.indir_gbps > 32.0,
        "af_shell10 SELL should beat the channel peak, got {:.1}",
        r.indir_gbps
    );
    assert!(r.coalesce_rate > 1.0);
}

/// Fig. 4 claim: without coalescing, element fetching monopolizes the
/// downstream bus and index fetch bandwidth is tiny.
#[test]
fn mlpnc_element_fetch_dominates() {
    let (csr, sell) = sell_for("circuit5M_dc", 40_000);
    let opts = StreamOptions::default();
    let r = run_indirect_stream(&AdapterConfig::mlp_nc(), sell.col_idx(), csr.cols(), &opts);
    assert!(r.elem_gbps > 5.0 * r.index_gbps);
    assert!(
        (r.coalesce_rate - 0.125).abs() < 1e-9,
        "8 B per 64 B access"
    );
}

/// Fig. 4 claim: the coalesce rate grows monotonically with the window.
#[test]
fn coalesce_rate_grows_with_window() {
    let (csr, sell) = sell_for("HPCG", 40_000);
    let opts = StreamOptions::default();
    let mut last = 0.0;
    for w in [16usize, 64, 256] {
        let r = run_indirect_stream(&AdapterConfig::mlp(w), sell.col_idx(), csr.cols(), &opts);
        assert!(
            r.coalesce_rate >= last,
            "W={w}: {:.2} < {last:.2}",
            r.coalesce_rate
        );
        last = r.coalesce_rate;
    }
}

/// Fig. 5a claim: pack systems beat the baseline, and the coalescer adds
/// a further multiple over pack0 (paper: 2.7x and 10x at full scale).
#[test]
fn spmv_speedup_ordering() {
    let (csr, sell) = sell_for("HPCG", 40_000);
    let base = run_base(&csr);
    let p0 = run_pack(&sell, AdapterConfig::mlp_nc());
    let p256 = run_pack(&sell, AdapterConfig::mlp(256));
    let s0 = p0.speedup_over(&base);
    let s256 = p256.speedup_over(&base);
    assert!(s0 > 1.2, "pack0 speedup {s0:.2} (paper ~2.7x)");
    assert!(s256 > 4.0, "pack256 speedup {s256:.2} (paper ~10x)");
    assert!(
        s256 / s0 > 2.0,
        "coalescer gain {:.2} (paper ~3x)",
        s256 / s0
    );
}

/// Fig. 5b claim: pack0 wastes multiples of the ideal traffic; the
/// 256-window coalescer brings it close to ideal; the baseline stays
/// near-ideal but at very low utilization.
#[test]
fn traffic_and_utilization_shape() {
    let (csr, sell) = sell_for("af_shell10", 40_000);
    let base = run_base(&csr);
    let p0 = run_pack(&sell, AdapterConfig::mlp_nc());
    let p256 = run_pack(&sell, AdapterConfig::mlp(256));
    assert!(p0.traffic_ratio() > 4.0, "paper: 5.6x avg");
    assert!(p256.traffic_ratio() < 1.6, "paper: 1.29x avg");
    assert!(base.traffic_ratio() < 1.5, "LLC keeps base near ideal");
    assert!(base.bw_utilization(32.0) < 0.15, "paper: 5.9% avg");
    assert!(p0.bw_utilization(32.0) > 0.4, "paper: 65.8% avg");
}

/// Fig. 6a claim: reported kGE and mm² match the paper's implementation.
#[test]
fn area_model_matches_paper() {
    for (w, kge, mm2) in [
        (64usize, 307.0, 0.19),
        (128, 617.0, 0.26),
        (256, 1035.0, 0.34),
    ] {
        let a = adapter_area(&AdapterConfig::mlp(w));
        assert!((a.coal_kge - kge).abs() < 10.0);
        assert!((a.area_mm2() - mm2).abs() < 0.012);
    }
}

/// Table I / Fig. 6b claim: ~27 kB adapter storage and superior on-chip
/// efficiency vs both reference machines.
#[test]
fn storage_and_onchip_efficiency() {
    let cfg = AdapterConfig::mlp(256);
    let kb = cfg.storage_bytes() as f64 / 1024.0;
    assert!((kb - 27.0).abs() < 1.0, "Table I: 27 kB, got {kb:.1}");

    let tw = this_work(&cfg, 2.0, 30.0);
    let vs_sx = sx_aurora().onchip_cost() / tw.onchip_cost();
    let vs_a64 = a64fx().onchip_cost() / tw.onchip_cost();
    assert!(vs_sx > 1.2, "paper: 1.4x, got {vs_sx:.2}");
    assert!(vs_a64 > 2.0, "paper: 2.6x, got {vs_a64:.2}");
}
