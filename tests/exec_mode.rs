//! Analytic execution mode + native kernel acceptance tests:
//!
//! 1. [`Csr::spmv_fast`] is byte-identical to the golden [`Csr::spmv`]
//!    at every worker count (1/2/4/8) on structured and hub/power-law
//!    matrices — row-blocked parallelism must not change the reduction
//!    order;
//! 2. an [`ExecMode::Analytic`] plan fills the same [`RunReport`]
//!    cost fields within the pinned relative tolerance
//!    (`nmpic::model::PINNED_REL_TOL`) of [`ExecMode::CycleAccurate`]
//!    across every backend × system, with bit-identical result vectors;
//! 3. a CG solve in analytic mode reproduces the cycle-accurate
//!    residual trajectory exactly — values come from `spmv_fast`, only
//!    the cost metrics are modeled.

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::model::PINNED_REL_TOL;
use nmpic::sparse::gen::{banded_fem, circuit, spd, stencil27};
use nmpic::sparse::Csr;
use nmpic::system::{
    golden_x, ExecMode, PartitionStrategy, SolveOptions, Solver, SpmvEngine, SpmvPlan, SystemKind,
};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Base,
        SystemKind::Pack(AdapterConfig::mlp(256)),
        SystemKind::Sharded {
            units: 4,
            strategy: PartitionStrategy::ByNnz,
        },
    ]
}

fn plan_for(system: &SystemKind, backend: &BackendConfig, mode: ExecMode, a: &Csr) -> SpmvPlan {
    SpmvEngine::builder()
        .backend(backend.clone())
        .system(system.clone())
        .exec_mode(mode)
        .build()
        .prepare(a)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn rel_err(analytic: f64, cycle: f64) -> f64 {
    if cycle == 0.0 {
        if analytic == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (analytic - cycle).abs() / cycle
    }
}

// ---------------------------------------------------------------------
// 1. spmv_fast byte-identity at every worker count
// ---------------------------------------------------------------------

#[test]
fn spmv_fast_is_byte_identical_to_golden_at_every_worker_count() {
    let matrices: Vec<(&str, Csr)> = vec![
        ("banded_fem", banded_fem(700, 6, 48, 5)),
        ("stencil27", stencil27(9, 9, 9)),
        // Hub/power-law: a few rows gather from everywhere, so a
        // reduction-order slip shows up immediately in the low bits.
        ("circuit", circuit(700, 6, 64, 0.05, 8, 7)),
    ];
    for (name, a) in &matrices {
        let x: Vec<f64> = (0..a.cols()).map(golden_x).collect();
        let golden = a.spmv(&x);
        assert_eq!(
            bits(&golden),
            bits(&a.spmv_fast(&x)),
            "{name}: spmv_fast (default workers) diverged from golden"
        );
        for jobs in [1usize, 2, 4, 8] {
            let mut y = vec![0.0; a.rows()];
            a.spmv_fast_into_jobs(jobs, &x, &mut y);
            assert_eq!(
                bits(&golden),
                bits(&y),
                "{name}: spmv_fast at {jobs} workers diverged from golden"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. analytic cost metrics within the pinned tolerance
// ---------------------------------------------------------------------

#[test]
fn analytic_reports_match_cycle_accurate_within_pinned_tolerance() {
    let a = banded_fem(700, 6, 48, 5);
    let x: Vec<f64> = (0..a.cols()).map(golden_x).collect();
    for backend in backends() {
        for system in systems() {
            let cycle = plan_for(&system, &backend, ExecMode::CycleAccurate, &a).run(&x);
            let analytic = plan_for(&system, &backend, ExecMode::Analytic, &a).run(&x);
            let point = format!("{}/{}", cycle.label, backend.label());
            assert!(cycle.verified && analytic.verified, "{point}: unverified");
            assert_eq!(
                bits(&cycle.ys[0]),
                bits(&analytic.ys[0]),
                "{point}: result vectors must be bit-identical across modes"
            );
            for (what, e) in [
                (
                    "cycles",
                    rel_err(analytic.cycles as f64, cycle.cycles as f64),
                ),
                (
                    "offchip_bytes",
                    rel_err(analytic.offchip_bytes as f64, cycle.offchip_bytes as f64),
                ),
                ("gbps", rel_err(analytic.gbps(), cycle.gbps())),
            ] {
                assert!(
                    e <= PINNED_REL_TOL,
                    "{point}: {what} rel err {e:.3} exceeds pinned tolerance {PINNED_REL_TOL}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. CG in analytic mode: exact residual trajectory, modeled cost
// ---------------------------------------------------------------------

#[test]
fn analytic_cg_reproduces_the_cycle_accurate_residual_trajectory() {
    let a = spd(96, 6, 8, 42);
    assert!(a.is_symmetric());
    let b: Vec<f64> = (0..a.rows()).map(golden_x).collect();
    let opts = SolveOptions::default();
    for system in systems() {
        let backend = BackendConfig::hbm();
        let mut cycle_plan = plan_for(&system, &backend, ExecMode::CycleAccurate, &a);
        let mut analytic_plan = plan_for(&system, &backend, ExecMode::Analytic, &a);
        let cycle = Solver::cg(&mut cycle_plan, &b, &opts);
        let analytic = Solver::cg(&mut analytic_plan, &b, &opts);
        assert!(cycle.converged && analytic.converged, "{}", cycle.label);
        assert_eq!(
            cycle.iterations, analytic.iterations,
            "{}: iteration counts must match",
            cycle.label
        );
        assert_eq!(
            bits(&cycle.residuals),
            bits(&analytic.residuals),
            "{}: analytic CG must walk the exact cycle-accurate residual trajectory",
            cycle.label
        );
        assert_eq!(
            bits(&cycle.x),
            bits(&analytic.x),
            "{}: solutions must be bit-identical",
            cycle.label
        );
        // Cost is modeled, not stepped — but it must stay plausible.
        assert!(analytic.spmv_cycles > 0 && analytic.offchip_bytes > 0);
        let e = rel_err(analytic.spmv_cycles as f64, cycle.spmv_cycles as f64);
        assert!(
            e <= PINNED_REL_TOL,
            "{}: solve cycles rel err {e:.3} exceeds {PINNED_REL_TOL}",
            cycle.label
        );
    }
}
