//! Cross-crate integration tests: the full stack from matrix generation
//! through the adapter and DRAM model to verified gathered data, and the
//! complete SpMV systems.

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::sparse::{by_name, suite, Sell};
use nmpic::system::{golden_x, SpmvEngine, SystemKind};

/// Builds a pack plan for `sell` with the given adapter on the default
/// HBM backend.
fn pack_plan(sell: &Sell, adapter: AdapterConfig) -> nmpic::system::SpmvPlan {
    SpmvEngine::builder()
        .system(SystemKind::Pack(adapter))
        .build()
        .prepare_sell(sell)
}

/// Every suite matrix, streamed through the headline adapter, must gather
/// exactly the golden data.
#[test]
fn every_suite_matrix_gathers_correctly() {
    let opts = StreamOptions::default();
    for spec in suite() {
        let csr = spec.build_capped(6_000);
        let sell = Sell::from_csr_default(&csr);
        let r = run_indirect_stream(&AdapterConfig::mlp(256), sell.col_idx(), csr.cols(), &opts);
        assert!(r.verified, "{}: gather mismatch", spec.name);
        assert_eq!(r.elements, sell.padded_len() as u64, "{}", spec.name);
    }
}

/// CSR and SELL streams of the same matrix must both verify; SELL's
/// padded stream is at least as long.
#[test]
fn both_formats_stream_correctly() {
    let spec = by_name("pwtk").unwrap();
    let csr = spec.build_capped(10_000);
    let sell = Sell::from_csr_default(&csr);
    let opts = StreamOptions::default();
    let r_csr = run_indirect_stream(&AdapterConfig::mlp(64), csr.col_idx(), csr.cols(), &opts);
    let r_sell = run_indirect_stream(&AdapterConfig::mlp(64), sell.col_idx(), csr.cols(), &opts);
    assert!(r_csr.verified && r_sell.verified);
    assert!(r_sell.elements >= r_csr.elements);
}

/// The whole pipeline is deterministic: identical runs give identical
/// cycle counts and statistics.
#[test]
fn simulation_is_deterministic() {
    let spec = by_name("G3_circuit").unwrap();
    let csr = spec.build_capped(8_000);
    let sell = Sell::from_csr_default(&csr);
    let opts = StreamOptions::default();
    let a = run_indirect_stream(&AdapterConfig::mlp(128), sell.col_idx(), csr.cols(), &opts);
    let b = run_indirect_stream(&AdapterConfig::mlp(128), sell.col_idx(), csr.cols(), &opts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.adapter, b.adapter);

    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let mut plan = pack_plan(&sell, AdapterConfig::mlp(256));
    let p1 = plan.run(&x);
    let p2 = plan.run(&x);
    assert_eq!(p1.cycles, p2.cycles);
    assert_eq!(p1.offchip_bytes, p2.offchip_bytes);
    assert_eq!(p1.y_bits(), p2.y_bits());
}

/// All four Fig. 5 systems run one matrix end to end; the pack systems
/// verify their computed result against the golden SpMV and the expected
/// performance ordering holds.
#[test]
fn system_stack_orders_as_expected() {
    let spec = by_name("HPCG").unwrap();
    let csr = spec.build_capped(20_000);
    let sell = Sell::from_csr_default(&csr);

    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let base = SpmvEngine::builder()
        .system(SystemKind::Base)
        .build()
        .prepare(&csr)
        .run(&x);
    let pack0 = pack_plan(&sell, AdapterConfig::mlp_nc()).run(&x);
    let pack64 = pack_plan(&sell, AdapterConfig::mlp(64)).run(&x);
    let pack256 = pack_plan(&sell, AdapterConfig::mlp(256)).run(&x);

    for r in [&base, &pack0, &pack64, &pack256] {
        assert!(r.verified, "{} failed verification", r.label);
    }
    assert!(
        pack256.cycles <= pack64.cycles && pack64.cycles < pack0.cycles,
        "bigger window must not be slower: {} <= {} < {}",
        pack256.cycles,
        pack64.cycles,
        pack0.cycles
    );
    assert!(
        pack256.cycles < base.cycles,
        "pack256 must beat the baseline"
    );
}

/// The adapter is robust to degenerate index streams: constant indices,
/// strictly descending indices, and a single element.
#[test]
fn degenerate_streams_verify() {
    let opts = StreamOptions::default();
    for cfg in [
        AdapterConfig::mlp_nc(),
        AdapterConfig::mlp(8),
        AdapterConfig::mlp(256),
        AdapterConfig::seq(64),
    ] {
        let constant: Vec<u32> = vec![5; 700];
        let r = run_indirect_stream(&cfg, &constant, 64, &opts);
        assert!(r.verified, "{}: constant stream", cfg.variant_name());

        let descending: Vec<u32> = (0..700u32).rev().collect();
        let r = run_indirect_stream(&cfg, &descending, 700, &opts);
        assert!(r.verified, "{}: descending stream", cfg.variant_name());

        let single = [3u32];
        let r = run_indirect_stream(&cfg, &single, 8, &opts);
        assert!(r.verified, "{}: single element", cfg.variant_name());
        assert_eq!(r.elements, 1);
    }
}

/// Stream lengths that are not multiples of the lane count, beat size or
/// block size all drain completely.
#[test]
fn awkward_lengths_drain() {
    let opts = StreamOptions::default();
    for n in [1usize, 7, 9, 15, 17, 63, 65, 255, 257, 1023] {
        let indices: Vec<u32> = (0..n as u32).map(|k| (k * 13) % 512).collect();
        let r = run_indirect_stream(&AdapterConfig::mlp(64), &indices, 512, &opts);
        assert!(r.verified, "length {n}");
        assert_eq!(r.elements, n as u64);
    }
}
