//! Property tests for the row partitioner and the sharded engine
//! (hand-rolled, seeded — the workspace has no proptest):
//!
//! 1. `by_nnz` / `by_rows` partitions are a **disjoint exact cover** of
//!    the rows for arbitrary matrices and shard counts;
//! 2. per-shard nonzeros respect the documented balance bound
//!    `ceil(nnz/K) + max_row_nnz`;
//! 3. sharded SpMV output is **byte-identical** to the single-unit path
//!    on every memory backend.

use nmpic::mem::BackendConfig;
use nmpic::sim::SimRng;
use nmpic::sparse::partition::{by_nnz, by_rows, Partition};
use nmpic::sparse::{Coo, Csr};
use nmpic::system::{golden_x, PartitionStrategy, RunReport, SpmvEngine, SystemKind};

/// Runs the sharded engine on `csr` with the given unit count, strategy
/// and backend, through the session API.
fn run_sharded(
    csr: &Csr,
    units: usize,
    strategy: PartitionStrategy,
    backend: &BackendConfig,
) -> RunReport {
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    SpmvEngine::builder()
        .backend(backend.clone())
        .system(SystemKind::Sharded { units, strategy })
        .build()
        .prepare(csr)
        .run(&x)
}

/// A random sparse matrix with skewed row densities (a few hub rows),
/// the shape that separates nnz balancing from row balancing.
fn arb_matrix(rng: &mut SimRng) -> Csr {
    let rows = rng.gen_u64(1, 200) as usize;
    let cols = rng.gen_u64(1, 200) as usize;
    let mut coo = Coo::new(rows, cols);
    let entries = rng.gen_u64(0, 600);
    for _ in 0..entries {
        // ~1 in 8 entries lands in a hub row (the first few rows).
        let r = if rng.gen_u64(0, 8) == 0 {
            rng.gen_u64(0, (rows as u64).min(3))
        } else {
            rng.gen_u64(0, rows as u64)
        } as u32;
        let c = rng.gen_u64(0, cols as u64) as u32;
        let v = rng.gen_u64(0, 400) as i64 - 200;
        coo.push(r, c, v as f64 * 0.125);
    }
    coo.to_csr()
}

fn assert_disjoint_exact_cover(p: &Partition, csr: &Csr, k: usize, seed: u64) {
    assert_eq!(p.shards(), k, "seed {seed}");
    // Contiguous, monotone, starting at row 0 and ending at `rows`:
    // together that makes the shards disjoint and exactly covering.
    assert_eq!(p.range(0).start, 0, "seed {seed}");
    assert_eq!(p.range(k - 1).end, csr.rows(), "seed {seed}");
    for i in 1..k {
        assert_eq!(
            p.range(i - 1).end,
            p.range(i).start,
            "seed {seed}, gap at {i}"
        );
    }
    // Every row is owned by exactly one shard, and shard nnz counts are
    // consistent with the rows they own.
    let mut owner = vec![usize::MAX; csr.rows()];
    for i in 0..k {
        for r in p.range(i) {
            assert_eq!(owner[r], usize::MAX, "seed {seed}: row {r} owned twice");
            owner[r] = i;
        }
        let rows_nnz: usize = p.range(i).map(|r| csr.row_nnz(r)).sum();
        assert_eq!(p.nnz(i), rows_nnz as u64, "seed {seed}, shard {i}");
    }
    assert!(
        owner.iter().all(|&o| o != usize::MAX),
        "seed {seed}: unowned row"
    );
    assert_eq!(p.total_nnz(), csr.nnz() as u64, "seed {seed}");
}

#[test]
fn partitions_are_disjoint_exact_covers() {
    for seed in 0..48u64 {
        let mut rng = SimRng::new(seed + 0x5EED);
        let csr = arb_matrix(&mut rng);
        for k in [1usize, 2, 3, 4, 7, 8, 13] {
            assert_disjoint_exact_cover(&by_nnz(&csr, k), &csr, k, seed);
            assert_disjoint_exact_cover(&by_rows(&csr, k), &csr, k, seed);
        }
    }
}

/// Degenerate shapes — `k` far beyond the row count, zero-nnz matrices,
/// single-row matrices — still produce disjoint exact covers whose empty
/// shards all trail the non-empty ones, and empty `CsrShard` views run
/// `spmv_into` as a no-op.
#[test]
fn degenerate_partitions_cover_with_trailing_empties() {
    let zero_nnz = Csr::from_parts(7, 3, vec![0; 8], vec![], vec![]).unwrap();
    let zero_rows = Csr::from_parts(0, 3, vec![0], vec![], vec![]).unwrap();
    let single_row =
        Csr::from_parts(1, 4, vec![0, 3], vec![0, 2, 3], vec![1.0, -2.0, 0.5]).unwrap();
    let mut rng = SimRng::new(0xDE9E);
    let random = arb_matrix(&mut rng);
    for (name, csr) in [
        ("zero_nnz", &zero_nnz),
        ("zero_rows", &zero_rows),
        ("single_row", &single_row),
        ("random", &random),
    ] {
        for k in [1usize, 2, 5, 16, 64] {
            for p in [by_nnz(csr, k), by_rows(csr, k)] {
                assert_disjoint_exact_cover(&p, csr, k, 0);
                let mut seen_empty = false;
                for i in 0..k {
                    if p.range(i).is_empty() {
                        seen_empty = true;
                    } else {
                        assert!(!seen_empty, "{name} k={k}: empty shard {i} not trailing");
                    }
                }
                // Shard-wise SpMV equals golden even with empty views.
                let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
                let mut y = vec![0.0; csr.rows()];
                for i in 0..k {
                    p.csr_shard(csr, i).spmv_into(&x, &mut y);
                }
                assert_eq!(y, csr.spmv(&x), "{name} k={k}");
            }
        }
    }
}

/// Regression (ISSUE 5): `by_rows` never received PR 4's degenerate
/// hardening — a zero-nnz matrix kept workless rows spread across every
/// shard while `by_nnz` compacted them into shard 0. Both strategies now
/// share the convention on every degenerate input: `k > rows` and
/// zero-row inputs trail their empty shards, and zero-nnz inputs produce
/// **identical** partitions (all rows in shard 0).
#[test]
fn by_rows_shares_by_nnz_degenerate_convention() {
    let zero_nnz = Csr::from_parts(9, 4, vec![0; 10], vec![], vec![]).unwrap();
    let zero_rows = Csr::from_parts(0, 4, vec![0], vec![], vec![]).unwrap();
    let tiny = Csr::from_parts(3, 3, vec![0, 1, 1, 2], vec![0, 2], vec![1.0, 2.0]).unwrap();
    for k in [1usize, 2, 3, 8, 40] {
        // Zero-nnz: the two strategies agree exactly (this is the case
        // that failed before the fix — by_rows spread the rows).
        let r = by_rows(&zero_nnz, k);
        assert_eq!(r, by_nnz(&zero_nnz, k), "k={k}");
        assert_eq!(r.range(0), 0..9, "k={k}: all rows compact into shard 0");
        for i in 1..k {
            assert!(r.range(i).is_empty(), "k={k}: shard {i} must trail empty");
        }
        // Zero rows: k empty shards for both.
        assert_eq!(by_rows(&zero_rows, k), by_nnz(&zero_rows, k), "k={k}");
        // k > rows: surplus shards trail for both strategies.
        for p in [by_rows(&tiny, k), by_nnz(&tiny, k)] {
            assert_disjoint_exact_cover(&p, &tiny, k, 0);
            let first_empty = (0..k).find(|&i| p.range(i).is_empty());
            if let Some(e) = first_empty {
                assert!(
                    (e..k).all(|i| p.range(i).is_empty()),
                    "k={k}: empties must trail from shard {e}"
                );
            }
        }
    }
}

/// The sharded engine tolerates unit counts beyond the row count: the
/// surplus units own trailing empty shards, simulate nothing, and the
/// merged result stays byte-identical to the single-unit path.
#[test]
fn engine_tolerates_more_units_than_rows() {
    let csr =
        Csr::from_parts(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.5, -0.25, 4.0]).unwrap();
    let backend = BackendConfig::hbm();
    let single = run_sharded(&csr, 1, PartitionStrategy::ByNnz, &backend);
    assert!(single.verified);
    for units in [4usize, 8] {
        let r = run_sharded(&csr, units, PartitionStrategy::ByNnz, &backend);
        assert!(r.verified, "x{units}");
        assert_eq!(r.y_bits(), single.y_bits(), "x{units}");
        let detail = r.shards().expect("sharded detail");
        assert_eq!(detail.per_shard.len(), units);
        let idle = detail.per_shard.iter().filter(|s| s.nnz == 0).count();
        assert!(idle >= units - 3, "x{units}: surplus units must sit idle");
        // Idle shards report zeros, not NaN.
        for s in &detail.per_shard {
            assert!(s.indir_gbps.is_finite());
        }
    }
}

#[test]
fn by_nnz_respects_the_documented_balance_bound() {
    for seed in 0..48u64 {
        let mut rng = SimRng::new(seed + 0xBA1A);
        let csr = arb_matrix(&mut rng);
        let max_row = csr.stats().max_row_nnz as u64;
        for k in [2usize, 3, 4, 8] {
            let p = by_nnz(&csr, k);
            let bound = (csr.nnz() as u64).div_ceil(k as u64) + max_row;
            for i in 0..k {
                assert!(
                    p.nnz(i) <= bound,
                    "seed {seed}, k={k}, shard {i}: {} nnz exceeds bound {bound} \
                     (total {}, max row {max_row})",
                    p.nnz(i),
                    csr.nnz()
                );
            }
            // The imbalance metric agrees with the raw counts.
            assert!(p.nnz_imbalance() >= 1.0, "seed {seed}");
        }
    }
}

/// Sharded SpMV must produce the same bytes as the single-unit path on
/// every backend the factory can build, for every partitioning strategy.
#[test]
fn sharded_spmv_bytes_match_single_unit_on_every_backend() {
    let mut rng = SimRng::new(0xC0FE);
    for case in 0..4u64 {
        let csr = {
            // Reroll until the matrix is non-empty (the engine rejects
            // matrices with no nonzeros).
            let mut m = arb_matrix(&mut rng);
            while m.nnz() == 0 {
                m = arb_matrix(&mut rng);
            }
            m
        };
        for backend in [
            BackendConfig::ideal(),
            BackendConfig::hbm(),
            BackendConfig::interleaved(4),
            BackendConfig::interleaved(8),
        ] {
            let single = run_sharded(&csr, 1, PartitionStrategy::ByNnz, &backend);
            assert!(single.verified, "case {case}, {}", backend.label());
            for units in [2usize, 4] {
                for strategy in [PartitionStrategy::ByNnz, PartitionStrategy::ByRows] {
                    let sharded = run_sharded(&csr, units, strategy, &backend);
                    assert!(
                        sharded.verified,
                        "case {case}, {} x{units} {strategy:?}: golden mismatch",
                        backend.label()
                    );
                    assert_eq!(
                        sharded.y_bits(),
                        single.y_bits(),
                        "case {case}, {} x{units} {strategy:?}: bytes diverged",
                        backend.label()
                    );
                }
            }
        }
    }
}
