//! Concurrent-correctness tests for `SpmvService`: N threads submitting
//! against one shared service with a live background drain must produce
//! results **byte-identical** to serial single-tenant `SpmvPlan::run`,
//! across every memory backend (ideal/hbm/hbm4/hbm8) and every
//! `SystemKind` (base/pack/sharded), with the plan cache's hit/miss
//! accounting intact and per-lane admission exact under racing
//! submissions.

use std::sync::atomic::{AtomicUsize, Ordering};

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::sparse::gen::{banded_fem, circuit};
use nmpic::sparse::Csr;
use nmpic::system::{
    golden_x, PartitionStrategy, ServiceError, SpmvEngine, SpmvService, SystemKind,
};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

fn kinds() -> Vec<SystemKind> {
    vec![
        SystemKind::Base,
        SystemKind::Pack(AdapterConfig::mlp(64)),
        SystemKind::Sharded {
            units: 3,
            strategy: PartitionStrategy::ByNnz,
        },
    ]
}

/// Distinct deterministic request vectors, one per (thread, request).
fn request_x(csr: &Csr, thread: usize, req: usize) -> Vec<f64> {
    (0..csr.cols())
        .map(|i| golden_x(i + 131 * thread + 977 * req))
        .collect()
}

/// The core property: for every backend × system kind, N submitting
/// threads against one shared service (background drain live) get
/// exactly the bytes the serial single-tenant plan produces for their
/// vector.
#[test]
fn concurrent_submissions_match_serial_plan_bytes() {
    const THREADS: usize = 4;
    const REQS: usize = 2;
    let csr = banded_fem(96, 5, 12, 7);
    for backend in backends() {
        for kind in kinds() {
            let engine = SpmvEngine::builder()
                .backend(backend.clone())
                .system(kind.clone())
                .build();
            // Serial references, one per (thread, request) vector.
            let mut plan = engine.prepare(&csr);
            let want: Vec<Vec<Vec<u64>>> = (0..THREADS)
                .map(|t| {
                    (0..REQS)
                        .map(|q| {
                            let r = plan.run(&request_x(&csr, t, q));
                            assert!(r.verified);
                            r.y_bits()
                        })
                        .collect()
                })
                .collect();

            let service = SpmvService::new(engine);
            let key = service.prepare(&csr);
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..THREADS {
                    let service = &service;
                    let csr = &csr;
                    handles.push(s.spawn(move || {
                        let mut got = Vec::new();
                        for q in 0..REQS {
                            let x = request_x(csr, t, q);
                            // Lane quotas (64) are ample for the burst,
                            // so errors are real failures. The drain
                            // worker executes in the background; wait()
                            // blocks on publication.
                            let ticket = service.submit(key, x).expect("lane has room");
                            let done = service.wait(ticket).expect("drained in background");
                            assert!(done.verified);
                            got.push(done.y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
                        }
                        (t, got)
                    }));
                }
                for h in handles {
                    let (t, got) = h.join().expect("worker thread");
                    for (q, bits) in got.iter().enumerate() {
                        assert_eq!(
                            bits,
                            &want[t][q],
                            "{} / {kind}: thread {t} request {q} diverged from serial",
                            backend.label()
                        );
                    }
                }
            });
            let stats = service.stats();
            assert_eq!(stats.plans_prepared, 1, "{}/{kind}", backend.label());
            assert_eq!(stats.submitted, (THREADS * REQS) as u64);
            assert_eq!(stats.completed, (THREADS * REQS) as u64);
            assert_eq!(
                stats.taken,
                (THREADS * REQS) as u64,
                "every completion redeemed exactly once"
            );
            assert_eq!(stats.failed, 0);
        }
    }
}

/// Plan-cache accounting under concurrency: many threads preparing the
/// same two matrices produce exactly two plans, everything else hits.
#[test]
fn plan_cache_accounting_is_exact_under_concurrent_prepares() {
    const THREADS: usize = 8;
    let a = banded_fem(64, 4, 8, 1);
    let b = circuit(80, 3, 12, 0.1, 4, 2);
    let service = SpmvService::new(SpmvEngine::builder().system(SystemKind::Base).build());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let service = &service;
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let ka = service.prepare(a);
                let kb = service.prepare(b);
                assert_ne!(ka, kb);
                assert_eq!(service.prepare(a), ka);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.plans_prepared, 2, "one plan per distinct matrix");
    assert_eq!(
        stats.plan_cache_hits,
        (THREADS * 3 - 2) as u64,
        "every other prepare is a hit"
    );
}

/// Per-lane admission stays exact under concurrent pressure: with a
/// lane quota of 1 and no drain running (synchronous mode), exactly one
/// of the racing submissions wins and the rest are rejected with
/// `TenantQuotaExceeded` naming the tenant key.
#[test]
fn bounded_lane_rejects_concurrent_overflow() {
    const THREADS: usize = 6;
    let csr = banded_fem(48, 3, 6, 1);
    let service = SpmvService::builder(SpmvEngine::builder().system(SystemKind::Base).build())
        .drain_workers(0)
        .lane_quota(1)
        .build();
    let key = service.prepare(&csr);
    let accepted = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let csr = &csr;
            let accepted = &accepted;
            s.spawn(move || match service.submit(key, request_x(csr, t, 0)) {
                Ok(_) => {
                    accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServiceError::TenantQuotaExceeded { key: k, quota }) => {
                    assert_eq!(quota, 1);
                    assert_eq!(k, key, "the rejection names the tenant");
                }
                Err(e) => panic!("unexpected error: {e}"),
            });
        }
    });
    assert_eq!(accepted.load(Ordering::Relaxed), 1);
    let stats = service.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.rejected, (THREADS - 1) as u64);
    assert_eq!(service.pending(), 1);
    // The accepted request still executes and verifies once a caller
    // drives the synchronous drain.
    assert_eq!(service.drain_now(), 1);
    assert_eq!(service.stats().completed, 1);
}

/// Sharded plans inside the service execute their shards in parallel;
/// whatever the worker count, served bytes equal the 1-worker service.
#[test]
fn service_results_are_worker_count_invariant() {
    let csr = circuit(256, 4, 24, 0.1, 5, 3);
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let mut reference: Option<Vec<u64>> = None;
    for workers in [1usize, 2, 4] {
        let service = SpmvService::new(
            SpmvEngine::builder()
                .backend(BackendConfig::interleaved(8))
                .system(SystemKind::Sharded {
                    units: 4,
                    strategy: PartitionStrategy::ByNnz,
                })
                .shard_workers(workers)
                .build(),
        );
        let key = service.prepare(&csr);
        let done = service.run(key, x.clone()).expect("served");
        assert!(done.verified, "{workers} workers");
        let bits: Vec<u64> = done.y.iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(&bits, want, "{workers} workers diverged"),
        }
    }
}

/// The drain-worker axis is also byte-invariant: the same multi-tenant
/// burst served by 1 or 3 background drain workers produces identical
/// bytes and identical conservation accounting.
#[test]
fn service_results_are_drain_worker_count_invariant() {
    const REQS: usize = 6;
    let mats: Vec<Csr> = (0..3).map(|t| banded_fem(80, 4, 10, t as u64)).collect();
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for workers in [1usize, 3] {
        let service = SpmvService::builder(SpmvEngine::builder().system(SystemKind::Base).build())
            .drain_workers(workers)
            .build();
        let keys: Vec<_> = mats.iter().map(|m| service.prepare(m)).collect();
        let tickets: Vec<_> = (0..REQS)
            .map(|q| {
                let t = q % mats.len();
                (
                    t,
                    service.submit(keys[t], request_x(&mats[t], t, q)).unwrap(),
                )
            })
            .collect();
        service.quiesce();
        let got: Vec<Vec<u64>> = tickets
            .into_iter()
            .map(|(_, ticket)| {
                let done = service.take(ticket).expect("published by quiesce");
                assert!(done.verified);
                done.y.iter().map(|v| v.to_bits()).collect()
            })
            .collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{workers} drain workers diverged"),
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, REQS as u64);
        assert_eq!(stats.completed, REQS as u64);
        assert_eq!(stats.taken, REQS as u64);
    }
}
