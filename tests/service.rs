//! Concurrent-correctness tests for `SpmvService`: N threads submitting
//! against one shared service must produce results **byte-identical** to
//! serial single-tenant `SpmvPlan::run`, across every memory backend
//! (ideal/hbm/hbm4/hbm8) and every `SystemKind` (base/pack/sharded),
//! with the plan cache's hit/miss accounting intact.

use std::sync::atomic::{AtomicUsize, Ordering};

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::sparse::gen::{banded_fem, circuit};
use nmpic::sparse::Csr;
use nmpic::system::{
    golden_x, PartitionStrategy, ServiceError, SpmvEngine, SpmvService, SystemKind,
};

fn backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

fn kinds() -> Vec<SystemKind> {
    vec![
        SystemKind::Base,
        SystemKind::Pack(AdapterConfig::mlp(64)),
        SystemKind::Sharded {
            units: 3,
            strategy: PartitionStrategy::ByNnz,
        },
    ]
}

/// Distinct deterministic request vectors, one per (thread, request).
fn request_x(csr: &Csr, thread: usize, req: usize) -> Vec<f64> {
    (0..csr.cols())
        .map(|i| golden_x(i + 131 * thread + 977 * req))
        .collect()
}

/// The core property: for every backend × system kind, N submitting
/// threads against one shared service get exactly the bytes the serial
/// single-tenant plan produces for their vector.
#[test]
fn concurrent_submissions_match_serial_plan_bytes() {
    const THREADS: usize = 4;
    const REQS: usize = 2;
    let csr = banded_fem(96, 5, 12, 7);
    for backend in backends() {
        for kind in kinds() {
            let engine = SpmvEngine::builder()
                .backend(backend.clone())
                .system(kind.clone())
                .build();
            // Serial references, one per (thread, request) vector.
            let mut plan = engine.prepare(&csr);
            let want: Vec<Vec<Vec<u64>>> = (0..THREADS)
                .map(|t| {
                    (0..REQS)
                        .map(|q| {
                            let r = plan.run(&request_x(&csr, t, q));
                            assert!(r.verified);
                            r.y_bits()
                        })
                        .collect()
                })
                .collect();

            let service = SpmvService::new(engine);
            let key = service.prepare(&csr);
            let collects = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for t in 0..THREADS {
                    let service = &service;
                    let csr = &csr;
                    let collects = &collects;
                    handles.push(s.spawn(move || {
                        let mut got = Vec::new();
                        for q in 0..REQS {
                            let x = request_x(csr, t, q);
                            // Submit may race a full queue in principle;
                            // the capacity (64) is ample here, so errors
                            // are real failures.
                            let ticket = service.submit(key, x).expect("queue has room");
                            // Every thread may drive collection — the
                            // service serializes execution internally.
                            collects.fetch_add(service.collect().len(), Ordering::Relaxed);
                            let done = loop {
                                // Another thread's collect may have run
                                // our request; take() is the only wait.
                                match service.take(ticket) {
                                    Some(done) => break done,
                                    None => {
                                        collects
                                            .fetch_add(service.collect().len(), Ordering::Relaxed);
                                        std::thread::yield_now();
                                    }
                                }
                            };
                            assert!(done.verified);
                            got.push(done.y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
                        }
                        (t, got)
                    }));
                }
                for h in handles {
                    let (t, got) = h.join().expect("worker thread");
                    for (q, bits) in got.iter().enumerate() {
                        assert_eq!(
                            bits,
                            &want[t][q],
                            "{} / {kind}: thread {t} request {q} diverged from serial",
                            backend.label()
                        );
                    }
                }
            });
            let stats = service.stats();
            assert_eq!(stats.plans_prepared, 1, "{}/{kind}", backend.label());
            assert_eq!(stats.submitted, (THREADS * REQS) as u64);
            assert_eq!(stats.completed, (THREADS * REQS) as u64);
            assert_eq!(
                collects.load(Ordering::Relaxed),
                THREADS * REQS,
                "every completion observed exactly once"
            );
        }
    }
}

/// Plan-cache accounting under concurrency: many threads preparing the
/// same two matrices produce exactly two plans, everything else hits.
#[test]
fn plan_cache_accounting_is_exact_under_concurrent_prepares() {
    const THREADS: usize = 8;
    let a = banded_fem(64, 4, 8, 1);
    let b = circuit(80, 3, 12, 0.1, 4, 2);
    let service = SpmvService::new(SpmvEngine::builder().system(SystemKind::Base).build());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let service = &service;
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let ka = service.prepare(a);
                let kb = service.prepare(b);
                assert_ne!(ka, kb);
                assert_eq!(service.prepare(a), ka);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.plans_prepared, 2, "one plan per distinct matrix");
    assert_eq!(
        stats.plan_cache_hits,
        (THREADS * 3 - 2) as u64,
        "every other prepare is a hit"
    );
}

/// The bounded queue stays bounded under concurrent pressure: with a
/// capacity of 1 and no collector, exactly one of the racing submissions
/// wins and the rest are rejected with `QueueFull`.
#[test]
fn bounded_queue_rejects_concurrent_overflow() {
    const THREADS: usize = 6;
    let csr = banded_fem(48, 3, 6, 1);
    let service =
        SpmvService::with_queue_capacity(SpmvEngine::builder().system(SystemKind::Base).build(), 1);
    let key = service.prepare(&csr);
    let accepted = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let service = &service;
            let csr = &csr;
            let accepted = &accepted;
            s.spawn(move || match service.submit(key, request_x(csr, t, 0)) {
                Ok(_) => {
                    accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(ServiceError::QueueFull { capacity }) => assert_eq!(capacity, 1),
                Err(e) => panic!("unexpected error: {e}"),
            });
        }
    });
    assert_eq!(accepted.load(Ordering::Relaxed), 1);
    let stats = service.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.rejected, (THREADS - 1) as u64);
    assert_eq!(service.pending(), 1);
    // The accepted request still executes and verifies.
    let tickets = service.collect();
    assert_eq!(tickets.len(), 1);
    assert!(service.take(tickets[0]).expect("completed").verified);
}

/// Sharded plans inside the service execute their shards in parallel;
/// whatever the worker count, served bytes equal the 1-worker service.
#[test]
fn service_results_are_worker_count_invariant() {
    let csr = circuit(256, 4, 24, 0.1, 5, 3);
    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let mut reference: Option<Vec<u64>> = None;
    for workers in [1usize, 2, 4] {
        let service = SpmvService::new(
            SpmvEngine::builder()
                .backend(BackendConfig::interleaved(8))
                .system(SystemKind::Sharded {
                    units: 4,
                    strategy: PartitionStrategy::ByNnz,
                })
                .shard_workers(workers)
                .build(),
        );
        let key = service.prepare(&csr);
        let done = service.run(key, x.clone()).expect("served");
        assert!(done.verified, "{workers} workers");
        let bits: Vec<u64> = done.y.iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(&bits, want, "{workers} workers diverged"),
        }
    }
}
