//! Cross-backend end-to-end tests: every memory backend built by the
//! `nmpic_mem::build_backend` factory must drive the full adapter stack
//! to byte-identical gathered data, and the SpMV systems must verify on
//! every backend.

use nmpic::axi::{ElemSize, PackRequest, Unpacker};
use nmpic::core::{
    run_indirect_stream, stream_memory_size, AdapterConfig, IndirectStreamUnit, StreamOptions,
};
use nmpic::mem::{build_backend, BackendConfig, BackendKind, ChannelPort, Memory};
use nmpic::sparse::{by_name, Sell};
use nmpic::system::{golden_x, SpmvEngine, SystemKind};

/// Every backend kind the factory can produce, including the acceptance
/// sweep `Interleaved {2, 4, 8}`.
fn all_backends() -> Vec<BackendConfig> {
    vec![
        BackendConfig::ideal(),
        BackendConfig::hbm(),
        BackendConfig::interleaved(2),
        BackendConfig::interleaved(4),
        BackendConfig::interleaved(8),
    ]
}

/// Drives one full indirect gather against a factory-built backend and
/// returns the gathered element stream.
fn gather_on(
    backend: &BackendConfig,
    cfg: &AdapterConfig,
    indices: &[u32],
    vec_len: usize,
) -> Vec<u64> {
    let mut chan = build_backend(
        backend,
        Memory::new(stream_memory_size(indices.len(), vec_len)),
    );
    let mem = chan.memory_mut();
    let idx_base = mem.alloc_array(indices.len() as u64, 4);
    let elem_base = mem.alloc_array(vec_len as u64, 8);
    mem.write_u32_slice(idx_base, indices);
    for i in 0..vec_len as u64 {
        mem.write_u64(
            elem_base + 8 * i,
            i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xBEEF,
        );
    }

    let mut unit = IndirectStreamUnit::new(cfg.clone());
    unit.begin(PackRequest::Indirect {
        idx_base,
        idx_size: ElemSize::B4,
        count: indices.len() as u64,
        elem_base,
        elem_size: ElemSize::B8,
    })
    .expect("fresh unit");
    let mut got = Unpacker::new(ElemSize::B8);
    let mut out = Vec::with_capacity(indices.len());
    let mut now = 0u64;
    while !unit.is_done() {
        unit.tick(now, &mut *chan);
        chan.tick(now);
        while let Some(beat) = unit.pop_beat() {
            got.push_beat(&beat);
            out.extend(got.drain());
        }
        now += 1;
        assert!(
            now < 200_000 + indices.len() as u64 * 300,
            "deadlock on {}",
            backend.label()
        );
    }
    out.extend(got.drain());
    out
}

/// The acceptance property: `IdealChannel`, `HbmChannel` and
/// `Interleaved{2,4,8}` all run behind the same factory, and the gathered
/// data is byte-identical across every backend.
#[test]
fn gather_is_byte_identical_across_backends() {
    let spec = by_name("G3_circuit").expect("suite matrix");
    let csr = spec.build_capped(5_000);
    let sell = Sell::from_csr_default(&csr);
    let indices = sell.col_idx();
    for adapter in [AdapterConfig::mlp(64), AdapterConfig::mlp_nc()] {
        let reference = gather_on(&BackendConfig::hbm(), &adapter, indices, csr.cols());
        assert_eq!(reference.len(), indices.len());
        for backend in all_backends() {
            let got = gather_on(&backend, &adapter, indices, csr.cols());
            assert_eq!(
                got,
                reference,
                "{} gather differs on {}",
                adapter.variant_name(),
                backend.label()
            );
        }
    }
}

/// The stream harness verifies against its golden model on every backend
/// and reports DRAM stats only where DRAM exists.
#[test]
fn stream_harness_runs_on_every_backend() {
    let indices: Vec<u32> = (0..1500u32).map(|k| (k * 37) % 700).collect();
    for backend in all_backends() {
        let kind = backend.kind;
        let opts = StreamOptions {
            backend,
            ..StreamOptions::default()
        };
        let r = run_indirect_stream(&AdapterConfig::mlp(256), &indices, 700, &opts);
        assert!(r.verified, "{kind}");
        assert_eq!(r.elements, indices.len() as u64, "{kind}");
        assert!(r.indir_gbps > 0.0, "{kind}");
        if kind == BackendKind::Ideal {
            assert_eq!(r.row_hit_rate, 0.0, "ideal channel models no rows");
        } else {
            assert!(r.row_hit_rate > 0.0, "{kind} should see row hits");
        }
    }
}

/// Both SpMV system models run and verify end to end on every backend.
#[test]
fn spmv_systems_verify_on_every_backend() {
    let spec = by_name("HPCG").expect("suite matrix");
    let csr = spec.build_capped(6_000);
    let sell = Sell::from_csr_default(&csr);
    for backend in all_backends() {
        let label = backend.label();
        let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
        let base = SpmvEngine::builder()
            .backend(backend.clone())
            .system(SystemKind::Base)
            .build()
            .prepare(&csr)
            .run(&x);
        assert!(base.verified, "base on {label}");
        let pack = SpmvEngine::builder()
            .backend(backend.clone())
            .system(SystemKind::Pack(AdapterConfig::mlp(256)))
            .build()
            .prepare_sell(&sell)
            .run(&x);
        assert!(pack.verified, "pack on {label}");
        assert!(pack.cycles > 0 && base.cycles > 0);
    }
}

/// More channels never slow the pack system down (same matrix, same
/// adapter, wider memory).
#[test]
fn pack_spmv_benefits_from_channels() {
    let spec = by_name("af_shell10").expect("suite matrix");
    let sell = Sell::from_csr_default(&spec.build_capped(12_000));
    let x: Vec<f64> = (0..sell.cols()).map(golden_x).collect();
    let run = |backend: BackendConfig| {
        SpmvEngine::builder()
            .backend(backend)
            .system(SystemKind::Pack(AdapterConfig::mlp_nc()))
            .build()
            .prepare_sell(&sell)
            .run(&x)
    };
    let one = run(BackendConfig::hbm());
    let four = run(BackendConfig::interleaved(4));
    assert!(one.verified && four.verified);
    assert!(
        four.cycles < one.cycles,
        "pack0 is DRAM-bound, 4 channels must help: {} vs {}",
        four.cycles,
        one.cycles
    );
}
