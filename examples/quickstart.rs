//! Quickstart: gather a sparse matrix's indirect stream through the
//! coalescing adapter and print what the coalescer achieved.
//!
//! Run with: `cargo run --release --example quickstart`

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::sparse::{by_name, Sell};

fn main() {
    // The HPCG 27-point stencil from the paper's suite, scaled to ~50k
    // nonzeros so the cycle-accurate run finishes in moments.
    let spec = by_name("HPCG").expect("suite matrix");
    let csr = spec.build_capped(50_000);
    let sell = Sell::from_csr_default(&csr);
    println!(
        "matrix {}: {} rows, {} nnz ({} padded SELL entries)",
        spec.name,
        csr.rows(),
        csr.nnz(),
        sell.padded_len()
    );

    // Stream the SELL column indices through three adapter variants: the
    // gather runs against a cycle-accurate HBM2 channel and is verified
    // element-by-element against a golden model.
    for cfg in [
        AdapterConfig::mlp_nc(),
        AdapterConfig::mlp(64),
        AdapterConfig::mlp(256),
    ] {
        let r = run_indirect_stream(&cfg, sell.col_idx(), csr.cols(), &StreamOptions::default());
        assert!(r.verified, "gathered data must match the golden model");
        println!(
            "{:8}  {:6.2} GB/s effective indirect bandwidth, coalesce rate {:4.2}, \
             {} wide element reads for {} elements",
            r.variant, r.indir_gbps, r.coalesce_rate, r.adapter.elem_wide_reads, r.elements
        );
    }
    println!("\nThe 256-entry parallel window turns ~one DRAM access per element");
    println!("into one access per coalesced request warp — the paper's 8x claim.");
}
