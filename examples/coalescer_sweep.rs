//! Ablation sweep: how the coalescing window size trades effective
//! bandwidth against silicon area and on-chip storage.
//!
//! Sweeps W from 8 to 512 (beyond the paper's largest point) on one
//! matrix, printing bandwidth, coalesce rate, kGE, mm² and kB per
//! configuration — the data behind a window-size design decision.
//!
//! Run with: `cargo run --release --example coalescer_sweep [matrix]`

use nmpic::core::{run_indirect_stream, AdapterConfig, StreamOptions};
use nmpic::model::adapter_area;
use nmpic::sparse::{by_name, Sell};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "af_shell10".to_string());
    let spec = by_name(&name).expect("suite matrix name");
    let csr = spec.build_capped(120_000);
    let sell = Sell::from_csr_default(&csr);
    println!(
        "window sweep on {} ({} nnz, SELL stream of {} indices)\n",
        name,
        csr.nnz(),
        sell.padded_len()
    );
    println!(
        "{:>8}  {:>10}  {:>9}  {:>9}  {:>8}  {:>8}",
        "variant", "BW (GB/s)", "coal-rate", "area kGE", "mm^2", "kB"
    );

    let opts = StreamOptions::default();
    let nc = AdapterConfig::mlp_nc();
    let r = run_indirect_stream(&nc, sell.col_idx(), csr.cols(), &opts);
    let a = adapter_area(&nc);
    println!(
        "{:>8}  {:>10.2}  {:>9.2}  {:>9.0}  {:>8.3}  {:>8.1}",
        r.variant,
        r.indir_gbps,
        r.coalesce_rate,
        a.total_kge(),
        a.area_mm2(),
        nc.storage_bytes() as f64 / 1024.0
    );

    for w in [8usize, 16, 32, 64, 128, 256, 512] {
        let cfg = AdapterConfig::mlp(w);
        let r = run_indirect_stream(&cfg, sell.col_idx(), csr.cols(), &opts);
        assert!(r.verified);
        let a = adapter_area(&cfg);
        println!(
            "{:>8}  {:>10.2}  {:>9.2}  {:>9.0}  {:>8.3}  {:>8.1}",
            r.variant,
            r.indir_gbps,
            r.coalesce_rate,
            a.total_kge(),
            a.area_mm2(),
            cfg.storage_bytes() as f64 / 1024.0
        );
    }
    println!("\nBandwidth saturates once the window captures the stream's reuse");
    println!("distance, while area keeps growing linearly — the paper picks 256.");
}
