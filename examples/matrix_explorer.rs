//! Explore the evaluation suite (or your own MatrixMarket file): structure
//! statistics and SELL conversion overheads that drive coalescer behaviour.
//!
//! Run with: `cargo run --release --example matrix_explorer`
//! or:       `cargo run --release --example matrix_explorer path/to/file.mtx`

use std::fs::File;
use std::io::BufReader;

use nmpic::sparse::{read_matrix_market, suite, Csr, Sell};

fn describe(name: &str, csr: &Csr) {
    let s = csr.stats();
    let sell = Sell::from_csr_default(csr);
    println!(
        "{:>14}  {:>9} rows  {:>9} nnz  {:>6.1} nnz/row  {:>9.0} avg-band  {:>5.2}x pad",
        name,
        s.rows,
        s.nnz,
        s.avg_row_nnz,
        s.avg_bandwidth,
        sell.padding_ratio()
    );
}

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let file = File::open(&path).expect("open MatrixMarket file");
        let csr = read_matrix_market(BufReader::new(file)).expect("parse MatrixMarket");
        describe(&path, &csr);
        return;
    }
    println!("paper evaluation suite (scaled to <=60k nnz each for display):\n");
    println!(
        "{:>14}  {:>14}  {:>13}  {:>14}  {:>18}  {:>10}",
        "matrix", "rows", "nnz", "density", "locality", "padding"
    );
    for spec in suite() {
        let csr = spec.build_capped(60_000);
        describe(spec.name, &csr);
    }
    println!("\navg-band is the mean |col - row| distance: small values mean the");
    println!("indirect stream revisits nearby vector blocks, which is exactly");
    println!("what the request coalescer converts into wide-access reuse.");
}
