//! End-to-end SpMV system comparison: the 1 MiB-LLC baseline versus the
//! AXI-Pack systems (pack0 / pack64 / pack256) on one suite matrix.
//!
//! Run with: `cargo run --release --example spmv_system [matrix] [max_nnz]`
//! e.g. `cargo run --release --example spmv_system G3_circuit 100000`

use nmpic::core::AdapterConfig;
use nmpic::sparse::{by_name, suite, Sell};
use nmpic::system::{golden_x, SpmvEngine, SystemKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "pwtk".to_string());
    let max_nnz: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120_000);

    let Some(spec) = by_name(&name) else {
        eprintln!("unknown matrix `{name}`; available:");
        for s in suite() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(1);
    };
    let csr = spec.build_capped(max_nnz);
    let sell = Sell::from_csr_default(&csr);
    println!(
        "{}: {} rows, {} nnz, SELL padding {:.2}x",
        name,
        csr.rows(),
        csr.nnz(),
        sell.padding_ratio()
    );

    let x: Vec<f64> = (0..csr.cols()).map(golden_x).collect();
    let base = SpmvEngine::builder()
        .system(SystemKind::Base)
        .build()
        .prepare(&csr)
        .run(&x);
    println!(
        "{:8}  {:>10} cycles  indir {:4.1}%  util {:4.1}%  traffic {:4.2}x ideal",
        base.label,
        base.cycles,
        100.0 * base.indir_fraction(),
        100.0 * base.bw_utilization(32.0),
        base.traffic_ratio()
    );
    for adapter in [
        AdapterConfig::mlp_nc(),
        AdapterConfig::mlp(64),
        AdapterConfig::mlp(256),
    ] {
        let r = SpmvEngine::builder()
            .system(SystemKind::Pack(adapter))
            .build()
            .prepare_sell(&sell)
            .run(&x);
        assert!(r.verified, "simulated result must equal the golden SpMV");
        println!(
            "{:8}  {:>10} cycles  indir {:4.1}%  util {:4.1}%  traffic {:4.2}x ideal  speedup {:5.2}x",
            r.label,
            r.cycles,
            100.0 * r.indir_fraction(),
            100.0 * r.bw_utilization(32.0),
            r.traffic_ratio(),
            r.speedup_over(&base)
        );
    }
}
