//! Scatter + gather round trip: permute a vector through DRAM using the
//! indirect units in both directions, with write coalescing at work.
//!
//! Gathers `src[perm[k]]` into a packed stream, then scatters that stream
//! to `dst[perm[k]]` — so `dst` must equal `src` — and reports how many
//! wide accesses each direction needed.
//!
//! Run with: `cargo run --release --example scatter_gather`

use nmpic::axi::{ElemSize, PackRequest, Packer, Unpacker};
use nmpic::core::{AdapterConfig, IndirectStreamUnit, ScatterRequest, ScatterUnit};
use nmpic::mem::{ChannelPort, HbmChannel, HbmConfig, Memory};

fn main() {
    let n: u64 = 4096;
    let mut mem = Memory::new(1 << 22);
    let idx_base = mem.alloc_array(n, 4);
    let src = mem.alloc_array(n, 8);
    let dst = mem.alloc_array(n, 8);

    // A locality-rich permutation: blocks of 16 shuffled around.
    let perm: Vec<u32> = (0..n as u32)
        .map(|k| {
            let blk = (k / 16) as u64;
            let shuffled = (blk.wrapping_mul(0x9E37) % (n / 16)) as u32;
            shuffled * 16 + k % 16
        })
        .collect();
    mem.write_u32_slice(idx_base, &perm);
    for i in 0..n {
        mem.write_u64(src + 8 * i, 0xC0FFEE00 + i);
    }
    let mut chan = HbmChannel::new(HbmConfig::default(), mem);

    // --- Gather pass.
    let mut gather = IndirectStreamUnit::new(AdapterConfig::mlp(256));
    gather
        .begin(PackRequest::Indirect {
            idx_base,
            idx_size: ElemSize::B4,
            count: n,
            elem_base: src,
            elem_size: ElemSize::B8,
        })
        .expect("fresh unit");
    let mut stream = Unpacker::new(ElemSize::B8);
    let mut now = 0u64;
    while !gather.is_done() {
        gather.tick(now, &mut chan);
        chan.tick(now);
        while let Some(beat) = gather.pop_beat() {
            stream.push_beat(&beat);
        }
        now += 1;
        assert!(now < 10_000_000);
    }
    let gathered = stream.drain();
    let gather_cycles = now;
    println!(
        "gather:  {n} elements in {gather_cycles} cycles, {} wide reads (coalesce rate {:.2})",
        gather.stats().elem_wide_reads,
        gather.stats().coalesce_rate()
    );

    // --- Scatter pass: write the gathered stream back through the same
    // permutation, so dst[perm[k]] = src[perm[k]].
    let mut scatter = ScatterUnit::new(AdapterConfig::mlp(256));
    scatter
        .begin(ScatterRequest {
            idx_base,
            idx_size: ElemSize::B4,
            count: n,
            elem_base: dst,
            elem_size: ElemSize::B8,
        })
        .expect("fresh unit");
    let mut packer = Packer::new(ElemSize::B8);
    let mut next = 0usize;
    let mut staged = None;
    let scatter_start = now;
    while !scatter.is_done(&chan) {
        if staged.is_none() {
            while next < gathered.len() && packer.pending() < 8 {
                packer.push(gathered[next]);
                next += 1;
            }
            staged = packer.pop_beat().or_else(|| {
                if next == gathered.len() {
                    packer.flush()
                } else {
                    None
                }
            });
        }
        if let Some(beat) = staged.take() {
            if !scatter.push_beat(&beat) {
                staged = Some(beat);
            }
        }
        scatter.tick(now, &mut chan);
        chan.tick(now);
        now += 1;
        assert!(now < 20_000_000);
    }
    println!(
        "scatter: {n} elements in {} cycles, {} wide masked writes (coalesce rate {:.2})",
        now - scatter_start,
        scatter.stats().wide_writes,
        scatter.stats().coalesce_rate()
    );

    // --- Verify the round trip.
    for i in 0..n {
        let want = chan.memory().read_u64(src + 8 * i);
        let got = chan.memory().read_u64(dst + 8 * i);
        assert_eq!(got, want, "slot {i}");
    }
    println!("verified: dst == src after the scatter/gather round trip");
}
