//! The session API end to end: build an engine, prepare a plan once,
//! run it against a batch of vectors, and compare the amortized cost
//! with the per-vector plan-rebuild path.
//!
//! Run with: `cargo run --release --example engine [matrix] [batch]`
//! e.g. `cargo run --release --example engine af_shell10 8`

use nmpic::core::AdapterConfig;
use nmpic::mem::BackendConfig;
use nmpic::sparse::{by_name, suite};
use nmpic::system::{golden_x, SpmvEngine, SystemKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "af_shell10".to_string());
    let batch: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let Some(spec) = by_name(&name) else {
        eprintln!("unknown matrix `{name}`; available:");
        for s in suite() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(1);
    };
    let csr = spec.build_capped(60_000);
    println!(
        "{}: {} rows, {} nnz, batch {batch}",
        name,
        csr.rows(),
        csr.nnz()
    );

    // Build once: the memory backend and system kind are the session's
    // fixed choices.
    let engine = SpmvEngine::builder()
        .backend(BackendConfig::interleaved(8))
        .system(SystemKind::Pack(AdapterConfig::mlp(256)))
        .batch_capacity(batch.max(1))
        .build();

    // Prepare once per matrix: format conversion + DRAM layout happen
    // here; the plan keeps the matrix image resident in a warm backend.
    let mut plan = engine.prepare(&csr);

    // A batch of distinct input vectors.
    let xs: Vec<Vec<f64>> = (0..batch.max(1))
        .map(|b| {
            (0..csr.cols())
                .map(|i| golden_x(i) + b as f64 * 1e-3)
                .collect()
        })
        .collect();

    // The legacy path rebuilt everything per call; its per-vector cost is
    // one single-vector run on a fresh plan.
    let rebuild = engine.prepare(&csr).run(&xs[0]);
    // The session path runs the whole batch on the prepared plan.
    let batched = plan.run_batch(&xs);
    assert!(rebuild.verified && batched.verified);

    println!(
        "{:10}  {:>12} cycles/vector  {:6.2} GB/s  traffic {:4.2}x ideal",
        "rebuild",
        format!("{:.0}", rebuild.cycles_per_vector()),
        rebuild.gbps(),
        rebuild.traffic_ratio(),
    );
    println!(
        "{:10}  {:>12} cycles/vector  {:6.2} GB/s  traffic {:4.2}x ideal  amortization {:.2}x",
        format!("batch B={batch}"),
        format!("{:.0}", batched.cycles_per_vector()),
        batched.gbps(),
        batched.traffic_ratio(),
        batched.speedup_over(&rebuild),
    );
}
